// Package servlet is an application container in the mold of the Tomcat
// servlet engine the paper measures: servlets are registered under URL
// patterns, initialized once with a shared context (database connection
// pool, session manager, engine-side lock manager), and invoked for each
// request arriving over the AJP listener — or directly in-process when the
// container is co-located with the web server.
//
// The engine-side lock manager is the container's analog of the Java
// synchronization the paper's "(sync)" configurations use to move table
// locking out of the database (§2.2).
package servlet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ajp"
	"repro/internal/cluster"
	"repro/internal/httpd"
	"repro/internal/pool"
	"repro/internal/telemetry"
)

// Context is the shared state handed to every servlet.
type Context struct {
	// DB is the replication-aware client to the database tier (the JDBC
	// DataSource analog; one replica degenerates to a plain pool).
	DB *cluster.Client
	// Locks is the engine-side lock manager for (sync) configurations.
	Locks *LockManager
	// Sessions tracks client sessions by cookie.
	Sessions *SessionManager

	mu    sync.RWMutex
	attrs map[string]any
}

// Tx runs fn inside one database transaction — the explicit transaction API
// servlets use for atomic multi-statement work. writeTables declares the
// tables fn intends to write (the cluster serializes conflicting
// transactions on them); fn returning nil commits, an error or panic rolls
// back, leaving every replica bit-identical to its pre-transaction state.
func (c *Context) Tx(writeTables []string, fn func(tx *cluster.Session) error) error {
	if c.DB == nil {
		return ErrNoDatabase
	}
	return c.DB.WithTx(writeTables, fn)
}

// SetAttr stores a container-scoped attribute (the ServletContext analog).
func (c *Context) SetAttr(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.attrs == nil {
		c.attrs = make(map[string]any)
	}
	c.attrs[key] = v
}

// Attr loads a container-scoped attribute.
func (c *Context) Attr(key string) (any, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.attrs[key]
	return v, ok
}

// Servlet is the unit of application logic.
type Servlet interface {
	// Init runs once before the first request.
	Init(ctx *Context) error
	// Service handles one request.
	Service(ctx *Context, req *httpd.Request) (*httpd.Response, error)
	// Destroy runs at container shutdown.
	Destroy()
}

// Func adapts a function into a Servlet with no lifecycle.
type Func func(ctx *Context, req *httpd.Request) (*httpd.Response, error)

// Init implements Servlet.
func (Func) Init(*Context) error { return nil }

// Service implements Servlet.
func (f Func) Service(ctx *Context, req *httpd.Request) (*httpd.Response, error) {
	return f(ctx, req)
}

// Destroy implements Servlet.
func (Func) Destroy() {}

// Config configures a container.
type Config struct {
	// DBAddr is the database DSN: one wire address, a comma-separated
	// replica list ("host:p1,host:p2") for a read-one-write-all cluster,
	// or semicolon-separated shard groups of replica lists
	// ("s0r0,s0r1;s1r0,s1r1") for a horizontally partitioned tier.
	// Empty means the container's servlets do not use a database (tests).
	DBAddr string
	// DBShardBy maps table name -> partitioning column for a sharded
	// DSN (cluster.Config.ShardBy semantics; ignored without shards).
	DBShardBy map[string]string
	// DBPoolSize bounds concurrent database connections per replica
	// (default 12, the value the perfsim calibration uses).
	DBPoolSize int
	// DBStrictWrites selects the cluster's strict write policy: a write
	// errors when any replica fails mid-broadcast instead of continuing on
	// the survivors.
	DBStrictWrites bool
	// DBTimeouts bounds the cluster transport: dial, per-statement round
	// trip, and pool-wait deadlines (pool.Timeouts semantics — zero fields
	// take the transport defaults, negative disables).
	DBTimeouts pool.Timeouts
	// DBSlowThreshold ejects a replica whose broadcast acks lag the
	// fastest replica by more than this (0: disabled).
	DBSlowThreshold time.Duration
	// DBSyncTimeout bounds a rejoining replica's data copy (cluster.Config
	// semantics: 0 is the cluster default, negative is unbounded).
	DBSyncTimeout time.Duration
	// DBQueryCache bounds the cluster client's query-result cache in
	// entries (0 disables; cluster.Config.QueryCache semantics).
	DBQueryCache int
	// Route names this container in a load-balanced application tier (the
	// jvmRoute of the paper's sticky-session setups): session ids carry it
	// as a ".route" suffix, and the front-end balancer (internal/lb) pins a
	// session's requests to the backend whose route matches. Empty means
	// the container runs unreplicated and session ids stay bare.
	Route string
	// SessionStore is the write-through replication target for session
	// state. Containers sharing a store fail sessions over transparently:
	// when a pinned backend dies, the survivor restores the session from
	// the store. Nil keeps sessions container-local (affinity still works;
	// failover loses session state).
	SessionStore SessionStore
	// Locks overrides the container's engine-side lock manager. A
	// replicated tier in one process must share one manager across its
	// backends, or the (sync) configurations' engine-side table locks
	// stop excluding each other and read-modify-write interactions on
	// different backends can interleave. Nil creates a private manager
	// (the single-container behavior). Engine-side locking cannot span
	// OS processes — the paper's Java-synchronization configurations have
	// the same single-container constraint.
	Locks *LockManager
}

// Container hosts servlets.
type Container struct {
	ctx      *Context
	mux      *httpd.Mux
	listener *ajp.Listener

	mu       sync.Mutex
	servlets []registered
	started  bool
	closed   bool

	requests atomic.Int64
}

// Stats describes the container's load for the cross-tier telemetry:
// requests dispatched to servlets, the database pool's aggregate
// saturation counters (nil when the container has no database), and the
// per-replica routing breakdown when the database is a cluster.
type Stats struct {
	Requests int64               `json:"requests"`
	DB       *pool.Stats         `json:"db,omitempty"`
	Replicas []telemetry.Replica `json:"replicas,omitempty"`
}

// Stats snapshots the container.
func (c *Container) Stats() Stats {
	s := Stats{Requests: c.requests.Load()}
	if c.ctx.DB != nil {
		ps := c.ctx.DB.Stats()
		s.DB = &ps
		if c.ctx.DB.Replicas() > 1 {
			s.Replicas = c.ctx.DB.ReplicaStats()
		}
	}
	return s
}

type registered struct {
	pattern string
	s       Servlet
}

// NewContainer creates a container. Call Register, then Start (AJP) and/or
// mount it in-process via Handler().
func NewContainer(cfg Config) *Container {
	sm := NewSessionManager()
	sm.route, sm.store = cfg.Route, cfg.SessionStore
	locks := cfg.Locks
	if locks == nil {
		locks = NewLockManager()
	}
	ctx := &Context{
		Locks:    locks,
		Sessions: sm,
	}
	if cfg.DBAddr != "" {
		ctx.DB = cluster.NewWithConfig(cluster.Config{
			DSN:           cfg.DBAddr,
			ShardBy:       cfg.DBShardBy,
			PoolSize:      cfg.DBPoolSize,
			StrictWrites:  cfg.DBStrictWrites,
			Timeouts:      cfg.DBTimeouts,
			SlowThreshold: cfg.DBSlowThreshold,
			SyncTimeout:   cfg.DBSyncTimeout,
			QueryCache:    cfg.DBQueryCache,
		})
	}
	return &Container{ctx: ctx, mux: httpd.NewMux()}
}

// Context returns the container's shared context.
func (c *Container) Context() *Context { return c.ctx }

// Register adds a servlet under a URL pattern (httpd.Mux semantics). It
// must be called before Start.
func (c *Container) Register(pattern string, s Servlet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		panic("servlet: Register after Start")
	}
	c.servlets = append(c.servlets, registered{pattern, s})
	c.mux.Handle(pattern, httpd.HandlerFunc(func(req *httpd.Request) (*httpd.Response, error) {
		c.requests.Add(1)
		// The content epoch is captured BEFORE the servlet renders: if a
		// commit lands mid-render the page's tag understates its freshness
		// and an edge page cache (internal/lb.PageCache) discards it — the
		// conservative direction. An HTTP response header, not a database
		// wire frame: the caching tier adds nothing to protocol v3.
		var epoch uint64
		if c.ctx.DB != nil {
			epoch = c.ctx.DB.ContentEpoch()
		}
		resp, err := s.Service(c.ctx, req)
		if resp != nil && c.ctx.DB != nil {
			resp.Header.Set("X-Content-Epoch", strconv.FormatUint(epoch, 10))
		}
		return resp, err
	}))
}

// Init runs every servlet's Init. Start calls it; call it directly when
// mounting the container in-process only.
func (c *Container) Init() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return nil
	}
	for _, r := range c.servlets {
		if err := r.s.Init(c.ctx); err != nil {
			return fmt.Errorf("servlet: init %s: %w", r.pattern, err)
		}
	}
	c.started = true
	return nil
}

// Start initializes servlets and serves AJP on addr, returning the bound
// address.
func (c *Container) Start(addr string) (net.Addr, error) {
	if err := c.Init(); err != nil {
		return nil, err
	}
	l := ajp.NewListener(c.mux)
	bound, err := l.Listen(addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.listener = l
	c.mu.Unlock()
	return bound, nil
}

// Handler exposes the container as an httpd.Handler for in-process mounting
// (the co-located configurations avoid real AJP sockets only in tests; the
// benchmarks use AJP even co-located, as Apache+Tomcat do).
func (c *Container) Handler() httpd.Handler { return c.mux }

// Close stops the listener, destroys servlets and closes the DB pool.
func (c *Container) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	l := c.listener
	servlets := c.servlets
	c.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, r := range servlets {
		r.s.Destroy()
	}
	if c.ctx.DB != nil {
		c.ctx.DB.Close()
	}
	return nil
}

// LockManager provides named engine-side locks. The (sync) configurations
// acquire the same logical tables here instead of issuing LOCK TABLES,
// relieving the database of lock contention (§2.2, §5.1). Multi-table sets
// are acquired in sorted order to avoid deadlock, mirroring MySQL.
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*sync.RWMutex
}

// NewLockManager returns an empty manager.
func NewLockManager() *LockManager {
	return &LockManager{locks: make(map[string]*sync.RWMutex)}
}

func (lm *LockManager) lock(name string) *sync.RWMutex {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	l, ok := lm.locks[name]
	if !ok {
		l = &sync.RWMutex{}
		lm.locks[name] = l
	}
	return l
}

// TableLock names one table and the intent in an Acquire set.
type TableLock struct {
	Table string
	Write bool
}

// WriteTables extracts the write-intent tables of a lock set, sorted — the
// table declaration the applications hand to Context.Tx when a lock set
// runs as a database transaction instead of engine locks.
func WriteTables(set []TableLock) []string {
	var out []string
	for _, tl := range set {
		if tl.Write {
			out = append(out, tl.Table)
		}
	}
	sort.Strings(out)
	return out
}

// Acquire locks the set and returns a release function. Duplicate tables
// merge to the strongest intent.
func (lm *LockManager) Acquire(set []TableLock) (release func()) {
	merged := make(map[string]bool, len(set))
	for _, tl := range set {
		merged[tl.Table] = merged[tl.Table] || tl.Write
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	type held struct {
		l     *sync.RWMutex
		write bool
	}
	hs := make([]held, 0, len(names))
	for _, n := range names {
		l := lm.lock(n)
		if merged[n] {
			l.Lock()
		} else {
			l.RLock()
		}
		hs = append(hs, held{l, merged[n]})
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for i := len(hs) - 1; i >= 0; i-- {
				if hs[i].write {
					hs[i].l.Unlock()
				} else {
					hs[i].l.RUnlock()
				}
			}
		})
	}
}

// SessionManager tracks client sessions via the JSESSIONID cookie. In a
// replicated application tier it is configured (servlet.Config) with a
// route — appended to session ids as ".route", the jvmRoute the front-end
// balancer pins on — and a shared SessionStore that every attribute write
// goes through, so any replica can restore a session it has never seen.
type SessionManager struct {
	route string
	store SessionStore

	mu   sync.Mutex
	next int64
	byID map[string]*Session
}

// Session is per-client state. Attribute values must be gob-encodable
// (register custom types with gob.Register) when a SessionStore is
// configured; mutating a stored value in place does not replicate — call
// Set again to publish, the same contract Java session replication places
// on setAttribute.
type Session struct {
	ID string

	store SessionStore
	mu    sync.Mutex
	attrs map[string]any
	ver   uint64 // store version this copy reflects
}

// Set stores a session attribute and, with a store configured, publishes
// the session's state to it (write-through replication).
func (s *Session) Set(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = v
	s.publishLocked()
}

// publishLocked replicates the attribute map to the store. An encode
// failure (an attribute type not registered with gob) keeps the session
// serving locally — only failover transparency is lost for this session.
func (s *Session) publishLocked() {
	if s.store == nil {
		return
	}
	if data, err := encodeAttrs(s.attrs); err == nil {
		s.ver = s.store.Save(s.ID, data)
	}
}

// refresh reloads the session from the store when the store holds a newer
// version — the session served requests on another backend since this
// container last saw it (failover, or a rebalanced pin).
func (s *Session) refresh() {
	if s.store == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.store.Version(s.ID)
	if !ok || v == s.ver {
		return
	}
	data, ver, ok := s.store.Load(s.ID)
	if !ok {
		return
	}
	if attrs, err := decodeAttrs(data); err == nil {
		s.attrs, s.ver = attrs, ver
	}
}

// Get loads a session attribute.
func (s *Session) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.attrs[key]
	return v, ok
}

// NewSessionManager returns an empty manager.
func NewSessionManager() *SessionManager {
	return &SessionManager{byID: make(map[string]*Session)}
}

// Len returns the number of live sessions.
func (m *SessionManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byID)
}

// Lookup finds the request's session via its cookie, or nil. With a store
// configured, a locally unknown session is restored from the store (the
// failover path), and a known one is refreshed if the store has moved on.
func (m *SessionManager) Lookup(req *httpd.Request) *Session {
	id := httpd.CookieValue(req.Header.Get("Cookie"), "JSESSIONID")
	if id == "" {
		return nil
	}
	m.mu.Lock()
	s := m.byID[id]
	m.mu.Unlock()
	if m.store == nil || s != nil {
		if s != nil {
			s.refresh()
		}
		return s
	}
	data, ver, ok := m.store.Load(id)
	if !ok {
		return nil
	}
	attrs, err := decodeAttrs(data)
	if err != nil {
		return nil
	}
	s = &Session{ID: id, store: m.store, attrs: attrs, ver: ver}
	m.mu.Lock()
	if cur, dup := m.byID[id]; dup {
		s = cur // lost a restore race; the winner is canonical
	} else {
		m.byID[id] = s
	}
	m.mu.Unlock()
	return s
}

// Ensure returns the request's session, creating one and setting the
// response cookie if needed. New ids carry the manager's route as a
// ".route" suffix, the affinity tag internal/lb pins on.
func (m *SessionManager) Ensure(req *httpd.Request, resp *httpd.Response) *Session {
	if s := m.Lookup(req); s != nil {
		return s
	}
	m.mu.Lock()
	m.next++
	id := fmt.Sprintf("s%08x", m.next)
	if m.route != "" {
		id += "." + m.route
	}
	s := &Session{ID: id, store: m.store}
	m.byID[id] = s
	m.mu.Unlock()
	resp.Header.Set("Set-Cookie", "JSESSIONID="+id+"; Path=/")
	return s
}

// Expire drops a session, from the replication store too.
func (m *SessionManager) Expire(id string) {
	m.mu.Lock()
	delete(m.byID, id)
	m.mu.Unlock()
	if m.store != nil {
		m.store.Delete(id)
	}
}

// ErrNoDatabase is returned by servlets that need a database when the
// container was configured without one.
var ErrNoDatabase = errors.New("servlet: container has no database pool")
