// Package servlet is an application container in the mold of the Tomcat
// servlet engine the paper measures: servlets are registered under URL
// patterns, initialized once with a shared context (database connection
// pool, session manager, engine-side lock manager), and invoked for each
// request arriving over the AJP listener — or directly in-process when the
// container is co-located with the web server.
//
// The engine-side lock manager is the container's analog of the Java
// synchronization the paper's "(sync)" configurations use to move table
// locking out of the database (§2.2).
package servlet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ajp"
	"repro/internal/cluster"
	"repro/internal/httpd"
	"repro/internal/pool"
	"repro/internal/telemetry"
)

// Context is the shared state handed to every servlet.
type Context struct {
	// DB is the replication-aware client to the database tier (the JDBC
	// DataSource analog; one replica degenerates to a plain pool).
	DB *cluster.Client
	// Locks is the engine-side lock manager for (sync) configurations.
	Locks *LockManager
	// Sessions tracks client sessions by cookie.
	Sessions *SessionManager

	mu    sync.RWMutex
	attrs map[string]any
}

// Tx runs fn inside one database transaction — the explicit transaction API
// servlets use for atomic multi-statement work. writeTables declares the
// tables fn intends to write (the cluster serializes conflicting
// transactions on them); fn returning nil commits, an error or panic rolls
// back, leaving every replica bit-identical to its pre-transaction state.
func (c *Context) Tx(writeTables []string, fn func(tx *cluster.Session) error) error {
	if c.DB == nil {
		return ErrNoDatabase
	}
	return c.DB.WithTx(writeTables, fn)
}

// SetAttr stores a container-scoped attribute (the ServletContext analog).
func (c *Context) SetAttr(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.attrs == nil {
		c.attrs = make(map[string]any)
	}
	c.attrs[key] = v
}

// Attr loads a container-scoped attribute.
func (c *Context) Attr(key string) (any, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.attrs[key]
	return v, ok
}

// Servlet is the unit of application logic.
type Servlet interface {
	// Init runs once before the first request.
	Init(ctx *Context) error
	// Service handles one request.
	Service(ctx *Context, req *httpd.Request) (*httpd.Response, error)
	// Destroy runs at container shutdown.
	Destroy()
}

// Func adapts a function into a Servlet with no lifecycle.
type Func func(ctx *Context, req *httpd.Request) (*httpd.Response, error)

// Init implements Servlet.
func (Func) Init(*Context) error { return nil }

// Service implements Servlet.
func (f Func) Service(ctx *Context, req *httpd.Request) (*httpd.Response, error) {
	return f(ctx, req)
}

// Destroy implements Servlet.
func (Func) Destroy() {}

// Config configures a container.
type Config struct {
	// DBAddr is the database DSN: one wire address, or a comma-separated
	// replica list ("host:p1,host:p2") for a read-one-write-all cluster.
	// Empty means the container's servlets do not use a database (tests).
	DBAddr string
	// DBPoolSize bounds concurrent database connections per replica
	// (default 12, the value the perfsim calibration uses).
	DBPoolSize int
	// DBStrictWrites selects the cluster's strict write policy: a write
	// errors when any replica fails mid-broadcast instead of continuing on
	// the survivors.
	DBStrictWrites bool
}

// Container hosts servlets.
type Container struct {
	ctx      *Context
	mux      *httpd.Mux
	listener *ajp.Listener

	mu       sync.Mutex
	servlets []registered
	started  bool
	closed   bool

	requests atomic.Int64
}

// Stats describes the container's load for the cross-tier telemetry:
// requests dispatched to servlets, the database pool's aggregate
// saturation counters (nil when the container has no database), and the
// per-replica routing breakdown when the database is a cluster.
type Stats struct {
	Requests int64               `json:"requests"`
	DB       *pool.Stats         `json:"db,omitempty"`
	Replicas []telemetry.Replica `json:"replicas,omitempty"`
}

// Stats snapshots the container.
func (c *Container) Stats() Stats {
	s := Stats{Requests: c.requests.Load()}
	if c.ctx.DB != nil {
		ps := c.ctx.DB.Stats()
		s.DB = &ps
		if c.ctx.DB.Replicas() > 1 {
			s.Replicas = c.ctx.DB.ReplicaStats()
		}
	}
	return s
}

type registered struct {
	pattern string
	s       Servlet
}

// NewContainer creates a container. Call Register, then Start (AJP) and/or
// mount it in-process via Handler().
func NewContainer(cfg Config) *Container {
	ctx := &Context{
		Locks:    NewLockManager(),
		Sessions: NewSessionManager(),
	}
	if cfg.DBAddr != "" {
		ctx.DB = cluster.NewWithConfig(cluster.Config{
			DSN:          cfg.DBAddr,
			PoolSize:     cfg.DBPoolSize,
			StrictWrites: cfg.DBStrictWrites,
		})
	}
	return &Container{ctx: ctx, mux: httpd.NewMux()}
}

// Context returns the container's shared context.
func (c *Container) Context() *Context { return c.ctx }

// Register adds a servlet under a URL pattern (httpd.Mux semantics). It
// must be called before Start.
func (c *Container) Register(pattern string, s Servlet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		panic("servlet: Register after Start")
	}
	c.servlets = append(c.servlets, registered{pattern, s})
	c.mux.Handle(pattern, httpd.HandlerFunc(func(req *httpd.Request) (*httpd.Response, error) {
		c.requests.Add(1)
		return s.Service(c.ctx, req)
	}))
}

// Init runs every servlet's Init. Start calls it; call it directly when
// mounting the container in-process only.
func (c *Container) Init() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return nil
	}
	for _, r := range c.servlets {
		if err := r.s.Init(c.ctx); err != nil {
			return fmt.Errorf("servlet: init %s: %w", r.pattern, err)
		}
	}
	c.started = true
	return nil
}

// Start initializes servlets and serves AJP on addr, returning the bound
// address.
func (c *Container) Start(addr string) (net.Addr, error) {
	if err := c.Init(); err != nil {
		return nil, err
	}
	l := ajp.NewListener(c.mux)
	bound, err := l.Listen(addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.listener = l
	c.mu.Unlock()
	return bound, nil
}

// Handler exposes the container as an httpd.Handler for in-process mounting
// (the co-located configurations avoid real AJP sockets only in tests; the
// benchmarks use AJP even co-located, as Apache+Tomcat do).
func (c *Container) Handler() httpd.Handler { return c.mux }

// Close stops the listener, destroys servlets and closes the DB pool.
func (c *Container) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	l := c.listener
	servlets := c.servlets
	c.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, r := range servlets {
		r.s.Destroy()
	}
	if c.ctx.DB != nil {
		c.ctx.DB.Close()
	}
	return nil
}

// LockManager provides named engine-side locks. The (sync) configurations
// acquire the same logical tables here instead of issuing LOCK TABLES,
// relieving the database of lock contention (§2.2, §5.1). Multi-table sets
// are acquired in sorted order to avoid deadlock, mirroring MySQL.
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*sync.RWMutex
}

// NewLockManager returns an empty manager.
func NewLockManager() *LockManager {
	return &LockManager{locks: make(map[string]*sync.RWMutex)}
}

func (lm *LockManager) lock(name string) *sync.RWMutex {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	l, ok := lm.locks[name]
	if !ok {
		l = &sync.RWMutex{}
		lm.locks[name] = l
	}
	return l
}

// TableLock names one table and the intent in an Acquire set.
type TableLock struct {
	Table string
	Write bool
}

// WriteTables extracts the write-intent tables of a lock set, sorted — the
// table declaration the applications hand to Context.Tx when a lock set
// runs as a database transaction instead of engine locks.
func WriteTables(set []TableLock) []string {
	var out []string
	for _, tl := range set {
		if tl.Write {
			out = append(out, tl.Table)
		}
	}
	sort.Strings(out)
	return out
}

// Acquire locks the set and returns a release function. Duplicate tables
// merge to the strongest intent.
func (lm *LockManager) Acquire(set []TableLock) (release func()) {
	merged := make(map[string]bool, len(set))
	for _, tl := range set {
		merged[tl.Table] = merged[tl.Table] || tl.Write
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	type held struct {
		l     *sync.RWMutex
		write bool
	}
	hs := make([]held, 0, len(names))
	for _, n := range names {
		l := lm.lock(n)
		if merged[n] {
			l.Lock()
		} else {
			l.RLock()
		}
		hs = append(hs, held{l, merged[n]})
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for i := len(hs) - 1; i >= 0; i-- {
				if hs[i].write {
					hs[i].l.Unlock()
				} else {
					hs[i].l.RUnlock()
				}
			}
		})
	}
}

// SessionManager tracks client sessions via the JSESSIONID cookie.
type SessionManager struct {
	mu   sync.Mutex
	next int64
	byID map[string]*Session
}

// Session is per-client state.
type Session struct {
	ID string

	mu    sync.Mutex
	attrs map[string]any
}

// Set stores a session attribute.
func (s *Session) Set(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = v
}

// Get loads a session attribute.
func (s *Session) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.attrs[key]
	return v, ok
}

// NewSessionManager returns an empty manager.
func NewSessionManager() *SessionManager {
	return &SessionManager{byID: make(map[string]*Session)}
}

// Len returns the number of live sessions.
func (m *SessionManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byID)
}

// Lookup finds the request's session via its cookie, or nil.
func (m *SessionManager) Lookup(req *httpd.Request) *Session {
	id := cookieValue(req.Header.Get("Cookie"), "JSESSIONID")
	if id == "" {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byID[id]
}

// Ensure returns the request's session, creating one and setting the
// response cookie if needed.
func (m *SessionManager) Ensure(req *httpd.Request, resp *httpd.Response) *Session {
	if s := m.Lookup(req); s != nil {
		return s
	}
	m.mu.Lock()
	m.next++
	id := fmt.Sprintf("s%08x", m.next)
	s := &Session{ID: id}
	m.byID[id] = s
	m.mu.Unlock()
	resp.Header.Set("Set-Cookie", "JSESSIONID="+id+"; Path=/")
	return s
}

// Expire drops a session.
func (m *SessionManager) Expire(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.byID, id)
}

// cookieValue extracts one cookie from a Cookie header.
func cookieValue(header, name string) string {
	for _, part := range strings.Split(header, ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if ok && k == name {
			return v
		}
	}
	return ""
}

// ErrNoDatabase is returned by servlets that need a database when the
// container was configured without one.
var ErrNoDatabase = errors.New("servlet: container has no database pool")
