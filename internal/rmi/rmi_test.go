package rmi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

type CalcArgs struct{ A, B int }
type CalcReply struct{ Sum int }

type Calc struct{ calls int }

func (c *Calc) Add(args *CalcArgs, reply *CalcReply) error {
	reply.Sum = args.A + args.B
	return nil
}

func (c *Calc) Fail(args *CalcArgs, reply *CalcReply) error {
	return errors.New("deliberate failure")
}

// unexported signature shapes that must NOT register
func (c *Calc) NoReply(args *CalcArgs) error { return nil }

func startRMI(t *testing.T, name string, svc any) (*Server, string) {
	t.Helper()
	s := NewServer()
	if err := s.Register(name, svc); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func TestCallRoundtrip(t *testing.T) {
	_, addr := startRMI(t, "Calc", &Calc{})
	c := NewClient(addr, 2)
	defer c.Close()
	var reply CalcReply
	if err := c.Call("Calc.Add", &CalcArgs{A: 2, B: 3}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Sum != 5 {
		t.Fatalf("sum %d", reply.Sum)
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := startRMI(t, "Calc", &Calc{})
	c := NewClient(addr, 2)
	defer c.Close()
	var reply CalcReply
	err := c.Call("Calc.Fail", &CalcArgs{}, &reply)
	if err == nil || !IsFault(err) {
		t.Fatalf("want fault, got %v", err)
	}
	if err.Error() != "deliberate failure" {
		t.Fatalf("msg %q", err.Error())
	}
	// Connection must survive a fault.
	if err := c.Call("Calc.Add", &CalcArgs{A: 1, B: 1}, &reply); err != nil {
		t.Fatalf("call after fault: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := startRMI(t, "Calc", &Calc{})
	c := NewClient(addr, 1)
	defer c.Close()
	err := c.Call("Calc.Nope", &CalcArgs{}, &CalcReply{})
	if err == nil || !IsFault(err) {
		t.Fatalf("want fault for unknown method, got %v", err)
	}
}

func TestRegisterRejectsBadService(t *testing.T) {
	s := NewServer()
	if err := s.Register("X", struct{}{}); err == nil {
		t.Fatal("empty service must fail to register")
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startRMI(t, "Calc", &Calc{})
	c := NewClient(addr, 4)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var reply CalcReply
			if err := c.Call("Calc.Add", &CalcArgs{A: i, B: i}, &reply); err != nil {
				t.Errorf("call: %v", err)
				return
			}
			if reply.Sum != 2*i {
				t.Errorf("sum %d, want %d", reply.Sum, 2*i)
			}
		}()
	}
	wg.Wait()
}

func TestMethodName(t *testing.T) {
	if _, err := MethodName("Svc", "M"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]string{{"", "M"}, {"S", ""}, {"a.b", "M"}, {"S", "m\x00"}} {
		if _, err := MethodName(bad[0], bad[1]); err == nil {
			t.Errorf("MethodName(%q,%q) should fail", bad[0], bad[1])
		}
	}
}

func BenchmarkRMICall(b *testing.B) {
	s := NewServer()
	if err := s.Register("Calc", &Calc{}); err != nil {
		b.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr.String(), 1)
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var reply CalcReply
		if err := c.Call("Calc.Add", &CalcArgs{A: 1, B: 2}, &reply); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprint()
}
