// Package rmi is a remote method invocation layer in the spirit of Java
// RMI, which the paper's servlets use to call session beans on the JOnAS
// EJB server. Services are plain Go values whose exported methods have the
// signature
//
//	func (s *Svc) Method(args *ArgsT, reply *ReplyT) error
//
// Arguments and replies travel gob-encoded over persistent pooled TCP
// connections. Each side keeps one gob encoder and one gob decoder alive
// for the life of a connection: gob streams send a type's wire description
// once and the decoder compiles it once, so per-call encoder/decoder
// construction would re-transmit and re-compile type metadata on every
// invocation — it showed up as ~12% of CPU on the EJB benchmark path. The
// framing is unchanged; only where the gob byte stream starts and ends per
// call differs, and a connection whose streams can desync (a call the
// server could not fully decode, or a reply it could not encode) is hung up
// after the fault is delivered, so the pooled-connection retry path redials
// rather than misinterpreting stream state.
package rmi

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"time"

	"repro/internal/pool"
)

const (
	frameCall  = 0x04
	frameReply = 0x05
	frameFault = 0x06
	maxFrame   = 8 << 20
)

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("rmi: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("rmi: oversized frame (%d bytes)", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return 0, nil, err
	}
	return hdr[4], p, nil
}

// method is one dispatchable service method.
type method struct {
	fn    reflect.Value
	args  reflect.Type // pointer elem type
	reply reflect.Type // pointer elem type
}

var errType = reflect.TypeOf((*error)(nil)).Elem()

// Server dispatches calls to registered services.
type Server struct {
	mu      sync.Mutex
	methods map[string]*method
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{methods: make(map[string]*method), conns: make(map[net.Conn]struct{})}
}

// Register exposes every suitable exported method of svc under
// "name.Method". It returns an error when svc has no usable methods.
func (s *Server) Register(name string, svc any) error {
	v := reflect.ValueOf(svc)
	t := v.Type()
	count := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		mt := m.Type
		// func(receiver, *ArgsT, *ReplyT) error
		if mt.NumIn() != 3 || mt.NumOut() != 1 || mt.Out(0) != errType {
			continue
		}
		if mt.In(1).Kind() != reflect.Pointer || mt.In(2).Kind() != reflect.Pointer {
			continue
		}
		key := name + "." + m.Name
		if _, dup := s.methods[key]; dup {
			return fmt.Errorf("rmi: duplicate method %s", key)
		}
		s.methods[key] = &method{
			fn:    v.Method(i),
			args:  mt.In(1).Elem(),
			reply: mt.In(2).Elem(),
		}
		count++
	}
	if count == 0 {
		return fmt.Errorf("rmi: %s has no methods of the form Method(*Args, *Reply) error", name)
	}
	return nil
}

// Listen binds addr and serves in the background.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rmi: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("rmi: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serve(conn)
		}
	}()
	return ln.Addr(), nil
}

// gobStream is one direction's persistent gob state: the decoder reads
// successive per-frame payloads through a swappable reader, the encoder
// writes into a reusable buffer. Both survive across calls so gob type
// descriptions travel (and compile) once per connection, not once per call.
type gobStream struct {
	src swapReader
	dec *gob.Decoder
	buf bytes.Buffer
	enc *gob.Encoder
}

func newGobStream() *gobStream {
	gs := &gobStream{}
	gs.dec = gob.NewDecoder(&gs.src)
	gs.enc = gob.NewEncoder(&gs.buf)
	return gs
}

// swapReader feeds one frame's payload bytes at a time to a long-lived gob
// decoder. It implements io.ByteReader so gob reads it directly instead of
// wrapping it in a bufio.Reader, which would buffer past frame boundaries.
type swapReader struct{ r bytes.Reader }

func (s *swapReader) set(p []byte)               { s.r.Reset(p) }
func (s *swapReader) Read(p []byte) (int, error) { return s.r.Read(p) }
func (s *swapReader) ReadByte() (byte, error)    { return s.r.ReadByte() }

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 32<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)
	gs := newGobStream()
	for {
		typ, payload, err := readFrame(br)
		if err != nil || typ != frameCall {
			return
		}
		outTyp, out, hangup := s.dispatch(gs, payload)
		if err := writeFrame(bw, outTyp, out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if hangup {
			// The gob streams may be out of step with the client's (a call
			// we could not decode, or a reply we could not encode). The
			// fault has been flushed; drop the connection so both sides
			// rebuild fresh streams instead of misreading state.
			return
		}
	}
}

// dispatch decodes "method\0gob(args)" and invokes it. hangup reports that
// the connection's gob streams can no longer be trusted and the connection
// must close once the fault is delivered; business faults (the method
// returning an error) keep the streams aligned and the connection alive.
func (s *Server) dispatch(gs *gobStream, payload []byte) (outTyp byte, out []byte, hangup bool) {
	idx := bytes.IndexByte(payload, 0)
	if idx < 0 {
		return frameFault, []byte("rmi: malformed call frame"), true
	}
	name := string(payload[:idx])
	s.mu.Lock()
	m := s.methods[name]
	s.mu.Unlock()
	if m == nil {
		// The undecoded args may have carried type descriptions the
		// client's encoder now considers sent: desync, hang up.
		return frameFault, []byte("rmi: no such method " + name), true
	}
	args := reflect.New(m.args)
	gs.src.set(payload[idx+1:])
	if err := gs.dec.Decode(args.Interface()); err != nil {
		return frameFault, []byte("rmi: decode args: " + err.Error()), true
	}
	reply := reflect.New(m.reply)
	res := m.fn.Call([]reflect.Value{args, reply})
	if errv := res[0].Interface(); errv != nil {
		return frameFault, []byte(errv.(error).Error()), false
	}
	gs.buf.Reset()
	if err := gs.enc.Encode(reply.Interface()); err != nil {
		return frameFault, []byte("rmi: encode reply: " + err.Error()), true
	}
	// out aliases gs.buf, which is only reset on the next call — after the
	// frame has been written.
	return frameReply, gs.buf.Bytes(), false
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Fault is an application- or dispatch-level error from the remote side.
type Fault struct{ Msg string }

func (f *Fault) Error() string { return f.Msg }

// IsFault reports whether err came from the remote method rather than the
// transport.
func IsFault(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// Client calls a remote Server over a pool of persistent connections
// (internal/pool). It is safe for concurrent use.
type Client struct {
	pool      *pool.Pool[*clientConn]
	opTimeout time.Duration
}

type clientConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	gs *gobStream
	// armedUntil amortizes SetDeadline: fast back-to-back round trips
	// reuse the armed deadline while >3/4 of the op window remains.
	armedUntil time.Time
}

// NewClient creates a client with up to size pooled connections and the
// default timeouts.
func NewClient(addr string, size int) *Client {
	return NewClientT(addr, size, pool.Timeouts{})
}

// NewClientT creates a client bounding dials with t.Dial, each call's
// round trip with t.Op, and pool borrow waits with t.Wait (zero fields
// take the pool-package defaults; negative fields disable a bound).
func NewClientT(addr string, size int, t pool.Timeouts) *Client {
	if size <= 0 {
		size = 8
	}
	t = t.WithDefaults()
	waitTimeout := time.Duration(-1)
	if t.Wait > 0 {
		waitTimeout = t.Wait
	}
	return &Client{opTimeout: t.Op, pool: pool.New(pool.Config[*clientConn]{
		Name: "rmi@" + addr,
		Dial: func() (*clientConn, error) {
			var nc net.Conn
			var err error
			if t.Dial > 0 {
				nc, err = net.DialTimeout("tcp", addr, t.Dial)
			} else {
				nc, err = net.Dial("tcp", addr)
			}
			if err != nil {
				return nil, fmt.Errorf("rmi: dial %s: %w", addr, err)
			}
			return &clientConn{nc: nc,
				br: bufio.NewReaderSize(nc, 32<<10),
				bw: bufio.NewWriterSize(nc, 32<<10),
				gs: newGobStream()}, nil
		},
		Destroy:     func(cc *clientConn) { cc.nc.Close() },
		Size:        size,
		WaitTimeout: waitTimeout,
	})}
}

// Call invokes "Svc.Method" with args, decoding the result into reply
// (a pointer). A remote Fault keeps the connection pooled; a transport
// error discards it and retries once on a fresh connection.
func (c *Client) Call(methodName string, args, reply any) error {
	return c.pool.Do(true, func(err error) bool { return !IsFault(err) },
		func(cc *clientConn) error {
			return c.roundTrip(cc, methodName, args, reply)
		})
}

// Stats snapshots the client pool's saturation counters.
func (c *Client) Stats() pool.Stats { return c.pool.Stats() }

func (c *Client) roundTrip(cc *clientConn, methodName string, args, reply any) error {
	if c.opTimeout > 0 {
		if now := time.Now(); cc.armedUntil.Sub(now) <= c.opTimeout-c.opTimeout/4 {
			cc.armedUntil = now.Add(c.opTimeout)
			cc.nc.SetDeadline(cc.armedUntil)
		}
	}
	gs := cc.gs
	gs.buf.Reset()
	gs.buf.WriteString(methodName)
	gs.buf.WriteByte(0)
	if err := gs.enc.Encode(args); err != nil {
		// The encoder may have half-written type or value bytes into the
		// buffer; the stream is unusable. Close so the pool redials.
		cc.nc.Close()
		return fmt.Errorf("rmi: encode args: %w", err)
	}
	if err := writeFrame(cc.bw, frameCall, gs.buf.Bytes()); err != nil {
		return err
	}
	if err := cc.bw.Flush(); err != nil {
		return err
	}
	typ, payload, err := readFrame(cc.br)
	if err != nil {
		return err
	}
	switch typ {
	case frameReply:
		if reply == nil {
			// The reply payload may carry type descriptions our persistent
			// decoder needs for later calls; since we cannot decode into
			// nothing, retire the connection instead of desyncing it.
			cc.nc.Close()
			return nil
		}
		gs.src.set(payload)
		return gs.dec.Decode(reply)
	case frameFault:
		// A fault leaves both sides' streams aligned (the server encoded no
		// reply); if the server chose to hang up, our next use of this
		// connection fails as a transport error and is retried fresh.
		return &Fault{Msg: string(payload)}
	default:
		return fmt.Errorf("rmi: unexpected frame type 0x%x", typ)
	}
}

// Close closes pooled connections.
func (c *Client) Close() { c.pool.Close() }

// MethodName builds "Svc.Method" with validation, for callers constructing
// names dynamically.
func MethodName(service, method string) (string, error) {
	if service == "" || method == "" || strings.ContainsAny(service+method, ".\x00") {
		return "", fmt.Errorf("rmi: invalid method name %q.%q", service, method)
	}
	return service + "." + method, nil
}
