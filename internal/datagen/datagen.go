// Package datagen provides deterministic synthetic data for the benchmark
// databases: names, words, emails, dates and digit strings. The paper's
// populations (TPC-W's 288,000 customers, the auction site's 1,000,000
// users) are generated, not shipped, so reproducibility only needs a seed.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Gen is a deterministic generator stream.
type Gen struct {
	r *rand.Rand
}

// New returns a generator seeded with seed.
func New(seed int64) *Gen { return &Gen{r: rand.New(rand.NewSource(seed))} }

// syllables compose pronounceable names and words.
var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
	"ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
	"ta", "te", "ti", "to", "tu", "va", "ve", "vi", "vo", "vu",
}

// Intn returns a uniform int in [0,n).
func (g *Gen) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform float in [0,1).
func (g *Gen) Float64() float64 { return g.r.Float64() }

// Word returns a pronounceable lowercase word of 2-4 syllables.
func (g *Gen) Word() string {
	n := 2 + g.r.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[g.r.Intn(len(syllables))])
	}
	return b.String()
}

// Name returns a capitalized name.
func (g *Gen) Name() string {
	w := g.Word()
	return strings.ToUpper(w[:1]) + w[1:]
}

// Sentence returns n space-separated words.
func (g *Gen) Sentence(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = g.Word()
	}
	return strings.Join(parts, " ")
}

// Email builds a plausible address from a nickname.
func (g *Gen) Email(nick string) string {
	return fmt.Sprintf("%s@%s.example.com", nick, g.Word())
}

// Digits returns an n-digit string (card numbers, phone numbers).
func (g *Gen) Digits(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + g.r.Intn(10))
	}
	return string(b)
}

// Date returns a synthetic date as days since epoch within [base-spread,
// base]. Benchmarks store dates as integers.
func (g *Gen) Date(base, spread int) int64 {
	return int64(base - g.r.Intn(spread+1))
}

// Price returns a price in [lo,hi) rounded to cents.
func (g *Gen) Price(lo, hi float64) float64 {
	v := lo + g.r.Float64()*(hi-lo)
	return float64(int(v*100)) / 100
}

// Pick returns a random element of the non-empty slice.
func Pick[T any](g *Gen, xs []T) T { return xs[g.r.Intn(len(xs))] }

// Image returns a deterministic pseudo-image blob of the given size; idx
// selects one of the shared blobs so large item populations don't need
// per-item image storage.
func Image(idx, size int) []byte {
	b := make([]byte, size)
	state := uint32(2654435761 * uint32(idx+1))
	for i := range b {
		state = state*1664525 + 1013904223
		b[i] = byte(state >> 24)
	}
	// GIF header so content-type sniffing looks sane.
	copy(b, "GIF89a")
	return b
}
