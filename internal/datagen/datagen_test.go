package datagen

import (
	"math"
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(5), New(5)
	for i := 0; i < 50; i++ {
		if a.Word() != b.Word() || a.Intn(100) != b.Intn(100) || a.Digits(8) != b.Digits(8) {
			t.Fatal("same seed diverged")
		}
	}
	c := New(6)
	same := 0
	a2 := New(5)
	for i := 0; i < 20; i++ {
		if a2.Word() == c.Word() {
			same++
		}
	}
	if same == 20 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestNameCapitalized(t *testing.T) {
	g := New(1)
	for i := 0; i < 20; i++ {
		n := g.Name()
		if n == "" || n[0] < 'A' || n[0] > 'Z' {
			t.Fatalf("name %q not capitalized", n)
		}
	}
}

func TestSentenceWordCount(t *testing.T) {
	g := New(2)
	s := g.Sentence(7)
	if got := len(strings.Fields(s)); got != 7 {
		t.Fatalf("sentence has %d words: %q", got, s)
	}
}

func TestDigits(t *testing.T) {
	g := New(3)
	d := g.Digits(16)
	if len(d) != 16 {
		t.Fatalf("digits length %d", len(d))
	}
	for _, c := range d {
		if c < '0' || c > '9' {
			t.Fatalf("non-digit in %q", d)
		}
	}
}

func TestPriceRange(t *testing.T) {
	g := New(4)
	for i := 0; i < 1000; i++ {
		p := g.Price(5, 100)
		if p < 5 || p >= 100 {
			t.Fatalf("price %g out of range", p)
		}
		cents := p * 100
		if math.Abs(cents-math.Round(cents)) > 1e-6 {
			t.Fatalf("price %g not cent-rounded", p)
		}
	}
}

func TestDateRange(t *testing.T) {
	g := New(5)
	for i := 0; i < 100; i++ {
		d := g.Date(12000, 30)
		if d < 11970 || d > 12000 {
			t.Fatalf("date %d out of range", d)
		}
	}
}

func TestEmailShape(t *testing.T) {
	g := New(6)
	e := g.Email("nick")
	if !strings.HasPrefix(e, "nick@") || !strings.HasSuffix(e, ".example.com") {
		t.Fatalf("email %q", e)
	}
}

func TestPick(t *testing.T) {
	g := New(7)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(g, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose some elements: %v", seen)
	}
}

func TestImageDeterministicAndSized(t *testing.T) {
	a := Image(3, 2048)
	b := Image(3, 2048)
	c := Image(4, 2048)
	if len(a) != 2048 || string(a) != string(b) {
		t.Fatal("image not deterministic")
	}
	if string(a) == string(c) {
		t.Fatal("different indexes produced identical images")
	}
	if !strings.HasPrefix(string(a), "GIF89a") {
		t.Fatal("missing GIF header")
	}
}
