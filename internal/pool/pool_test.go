package pool

import (
	"errors"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeConn stands in for a transport connection.
type fakeConn struct {
	id     int
	closed atomic.Bool
}

// harness builds a pool of fakeConns, tracking dials and destroys.
type harness struct {
	dials    atomic.Int64
	destroys atomic.Int64
	dialErr  atomic.Bool
}

func (h *harness) pool(size int) *Pool[*fakeConn] {
	return New(Config[*fakeConn]{
		Name: "test",
		Dial: func() (*fakeConn, error) {
			if h.dialErr.Load() {
				return nil, errors.New("dial refused")
			}
			return &fakeConn{id: int(h.dials.Add(1))}, nil
		},
		Destroy: func(c *fakeConn) {
			c.closed.Store(true)
			h.destroys.Add(1)
		},
		Size: size,
	})
}

func TestGetPutReuses(t *testing.T) {
	h := &harness{}
	p := h.pool(4)
	defer p.Close()
	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c, false)
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Fatalf("expected pooled conn back, got %v", c2)
	}
	p.Put(c2, false)
	if n := h.dials.Load(); n != 1 {
		t.Fatalf("dials = %d, want 1", n)
	}
	s := p.Stats()
	if s.Gets != 2 || s.Dials != 1 || s.Idle != 1 || s.InUse != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFIFOBorrowOrder(t *testing.T) {
	h := &harness{}
	p := h.pool(3)
	defer p.Close()
	a, _ := p.Get()
	b, _ := p.Get()
	c, _ := p.Get()
	p.Put(a, false)
	p.Put(b, false)
	p.Put(c, false)
	for _, want := range []*fakeConn{a, b, c} {
		got, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("borrow order: got conn %d, want %d", got.id, want.id)
		}
	}
}

func TestExhaustionBlocksAndUnblocks(t *testing.T) {
	h := &harness{}
	p := h.pool(2)
	defer p.Close()
	a, _ := p.Get()
	b, _ := p.Get()

	acquired := make(chan *fakeConn)
	go func() {
		c, err := p.Get() // must block until a Put
		if err != nil {
			t.Errorf("blocked get: %v", err)
		}
		acquired <- c
	}()
	select {
	case <-acquired:
		t.Fatal("third Get should have blocked on a size-2 pool")
	case <-time.After(20 * time.Millisecond):
	}
	p.Put(a, false)
	select {
	case c := <-acquired:
		if c != a {
			t.Fatalf("unblocked with conn %d, want returned conn %d", c.id, a.id)
		}
	case <-time.After(time.Second):
		t.Fatal("Get did not unblock after Put")
	}
	p.Put(b, false)
	s := p.Stats()
	if s.Waits != 1 || s.WaitNanos <= 0 {
		t.Fatalf("stats should record the blocked borrow: %+v", s)
	}
}

// TestBrokenDiscardReclaimsCapacity also covers the starvation case the
// pre-refactor pools had: a borrower queued on an exhausted pool must wake
// when a broken return reclaims capacity, and dial a replacement.
func TestBrokenDiscardReclaimsCapacity(t *testing.T) {
	h := &harness{}
	p := h.pool(1)
	defer p.Close()
	a, _ := p.Get()

	acquired := make(chan *fakeConn)
	go func() {
		c, err := p.Get()
		if err != nil {
			t.Errorf("blocked get: %v", err)
		}
		acquired <- c
	}()
	time.Sleep(10 * time.Millisecond)
	p.Put(a, true) // broken: destroyed, capacity reclaimed
	select {
	case c := <-acquired:
		if c == a {
			t.Fatal("borrower got the discarded conn back")
		}
		if !a.closed.Load() {
			t.Fatal("broken conn was not destroyed")
		}
		p.Put(c, false)
	case <-time.After(time.Second):
		t.Fatal("discard did not unblock the queued borrower")
	}
	s := p.Stats()
	if s.Discards != 1 || s.Dials != 2 {
		t.Fatalf("stats = %+v, want 1 discard and 2 dials", s)
	}
}

func TestDialErrorFreesCapacity(t *testing.T) {
	h := &harness{}
	p := h.pool(1)
	defer p.Close()
	h.dialErr.Store(true)
	if _, err := p.Get(); err == nil {
		t.Fatal("expected dial error")
	}
	h.dialErr.Store(false)
	done := make(chan error, 1)
	go func() {
		c, err := p.Get()
		if err == nil {
			p.Put(c, false)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("get after failed dial: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("failed dial leaked its capacity permit")
	}
}

func TestCloseWhileBorrowed(t *testing.T) {
	h := &harness{}
	p := h.pool(2)
	a, _ := p.Get()
	b, _ := p.Get()
	p.Put(b, false) // idle at close time
	p.Close()
	if !b.closed.Load() {
		t.Fatal("idle conn not destroyed at Close")
	}
	if a.closed.Load() {
		t.Fatal("borrowed conn destroyed while still out")
	}
	p.Put(a, false)
	if !a.closed.Load() {
		t.Fatal("conn returned after Close not destroyed")
	}
	if _, err := p.Get(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	if n := h.destroys.Load(); n != 2 {
		t.Fatalf("destroys = %d, want 2", n)
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	h := &harness{}
	p := h.pool(1)
	c, _ := p.Get()
	errc := make(chan error)
	go func() {
		_, err := p.Get()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("waiter got %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not release the blocked borrower")
	}
	p.Put(c, false)
}

// TestClosePutRace is the regression test for the pre-refactor wire.Pool
// bug: Put's channel send could race Close's close(chan) and panic. Run
// with -race.
func TestClosePutRace(t *testing.T) {
	for i := 0; i < 200; i++ {
		h := &harness{}
		p := h.pool(4)
		var conns []*fakeConn
		for j := 0; j < 4; j++ {
			c, err := p.Get()
			if err != nil {
				t.Fatal(err)
			}
			conns = append(conns, c)
		}
		var wg sync.WaitGroup
		wg.Add(len(conns) + 1)
		for _, c := range conns {
			c := c
			go func() {
				defer wg.Done()
				p.Put(c, false)
			}()
		}
		go func() {
			defer wg.Done()
			p.Close()
		}()
		wg.Wait()
		// Every conn must end destroyed: either drained by Close or
		// destroyed by a post-close Put.
		for _, c := range conns {
			if !c.closed.Load() {
				t.Fatalf("iteration %d: conn %d leaked", i, c.id)
			}
		}
	}
}

func TestConcurrentGetPut(t *testing.T) {
	h := &harness{}
	p := h.pool(8)
	defer p.Close()
	var wg sync.WaitGroup
	var ops atomic.Int64
	for g := 0; g < 32; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, err := p.Get()
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				ops.Add(1)
				p.Put(c, (g+i)%17 == 0)
			}
		}()
	}
	wg.Wait()
	if ops.Load() != 32*50 {
		t.Fatalf("ops = %d", ops.Load())
	}
	s := p.Stats()
	if s.Gets != 32*50 {
		t.Fatalf("gets = %d, want %d", s.Gets, 32*50)
	}
	if s.InUse != 0 {
		t.Fatalf("in_use = %d after all puts", s.InUse)
	}
	if s.Dials-s.Discards != int64(s.Idle) {
		t.Fatalf("conn accounting: dials=%d discards=%d idle=%d", s.Dials, s.Discards, s.Idle)
	}
}

func TestDoRetriesOnceOnBrokenConn(t *testing.T) {
	h := &harness{}
	p := h.pool(2)
	defer p.Close()
	attempts := 0
	err := p.Do(true, nil, func(c *fakeConn) error {
		attempts++
		if attempts == 1 {
			return errors.New("stale conn")
		}
		return nil
	})
	if err != nil || attempts != 2 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
	s := p.Stats()
	if s.Retries != 1 || s.Discards != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGetWaitTimeout(t *testing.T) {
	h := &harness{}
	p := New(Config[*fakeConn]{
		Name:        "test",
		Dial:        func() (*fakeConn, error) { return &fakeConn{id: int(h.dials.Add(1))}, nil },
		Size:        1,
		WaitTimeout: 30 * time.Millisecond,
	})
	defer p.Close()
	a, _ := p.Get()
	start := time.Now()
	_, err := p.Get()
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("Get on exhausted pool = %v, want ErrWaitTimeout", err)
	}
	if !IsTimeout(err) {
		t.Fatal("ErrWaitTimeout must classify as a timeout")
	}
	if d := time.Since(start); d < 25*time.Millisecond || d > 5*time.Second {
		t.Fatalf("wait timeout fired after %v, want ~30ms", d)
	}
	s := p.Stats()
	if s.WaitTimeouts != 1 || s.WaitNanos <= 0 {
		t.Fatalf("stats should count the timed-out wait: %+v", s)
	}
	p.Put(a, false)
	if c, err := p.Get(); err != nil {
		t.Fatalf("Get after a freed conn: %v", err)
	} else {
		p.Put(c, false)
	}
}

func TestGetWaitTimeoutDisabled(t *testing.T) {
	h := &harness{}
	p := New(Config[*fakeConn]{
		Name:        "test",
		Dial:        func() (*fakeConn, error) { return &fakeConn{id: int(h.dials.Add(1))}, nil },
		Size:        1,
		WaitTimeout: -1,
	})
	defer p.Close()
	a, _ := p.Get()
	acquired := make(chan *fakeConn)
	go func() {
		c, err := p.Get()
		if err != nil {
			t.Errorf("blocked get: %v", err)
		}
		acquired <- c
	}()
	select {
	case <-acquired:
		t.Fatal("Get should still be blocked")
	case <-time.After(20 * time.Millisecond):
	}
	p.Put(a, false)
	c := <-acquired
	p.Put(c, false)
}

func TestDoBoundedRetriesWithBackoff(t *testing.T) {
	h := &harness{}
	p := New(Config[*fakeConn]{
		Name:          "test",
		Dial:          func() (*fakeConn, error) { return &fakeConn{id: int(h.dials.Add(1))}, nil },
		Size:          2,
		RetryAttempts: 3,
		RetryBackoff:  time.Millisecond,
	})
	defer p.Close()
	attempts := 0
	failure := errors.New("transport down")
	err := p.Do(true, nil, func(c *fakeConn) error {
		attempts++
		return failure
	})
	if !errors.Is(err, failure) {
		t.Fatalf("err = %v, want the transport error", err)
	}
	if attempts != 4 { // 1 try + 3 retries
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	s := p.Stats()
	if s.Retries != 3 || s.Discards != 4 {
		t.Fatalf("stats = %+v, want 3 retries / 4 discards", s)
	}
	// First retry is immediate; the remaining two back off.
	if s.Backoffs != 2 || s.BackoffNanos <= 0 {
		t.Fatalf("stats = %+v, want 2 counted backoff sleeps", s)
	}
}

// TestDoNeverRetriesTimeouts: a round trip that outlived its deadline may
// have been fully delivered to a slow peer and still be executing, so
// retrying it would duplicate side effects (a non-idempotent POST through
// AJP, an RMI call) — Do must surface the timeout immediately even with
// retry enabled.
func TestDoNeverRetriesTimeouts(t *testing.T) {
	h := &harness{}
	p := h.pool(2)
	defer p.Close()
	attempts := 0
	err := p.Do(true, nil, func(c *fakeConn) error {
		attempts++
		return os.ErrDeadlineExceeded
	})
	if !errors.Is(err, os.ErrDeadlineExceeded) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d, want the timeout surfaced without a retry", err, attempts)
	}
	s := p.Stats()
	if s.Retries != 0 || s.OpTimeouts != 1 || s.Discards != 1 {
		t.Fatalf("stats = %+v, want 0 retries / 1 op timeout / 1 discard", s)
	}
}

// TestRetryAttemptsNegativeDisablesRetries: negative RetryAttempts means
// "no retries at all", mirroring the Timeouts negative-disables convention
// — the config-level escape hatch for strictly non-idempotent traffic.
func TestRetryAttemptsNegativeDisablesRetries(t *testing.T) {
	h := &harness{}
	p := New(Config[*fakeConn]{
		Name:          "test",
		Dial:          func() (*fakeConn, error) { return &fakeConn{id: int(h.dials.Add(1))}, nil },
		Size:          1,
		RetryAttempts: -1,
	})
	defer p.Close()
	attempts := 0
	err := p.Do(true, nil, func(c *fakeConn) error {
		attempts++
		return errors.New("transport down")
	})
	if err == nil || attempts != 1 {
		t.Fatalf("err=%v attempts=%d, want a single attempt with retries disabled", err, attempts)
	}
	if s := p.Stats(); s.Retries != 0 {
		t.Fatalf("retries = %d, want 0", s.Retries)
	}
}

// TestSeededBackoffJitterReplays: with RetrySeed set, the backoff delay
// sequence is a pure function of the seed, so a fault-injection run that
// depends on retry timing replays exactly.
func TestSeededBackoffJitterReplays(t *testing.T) {
	mk := func(seed uint64) *Pool[*fakeConn] {
		p := New(Config[*fakeConn]{
			Name:      "test",
			Dial:      func() (*fakeConn, error) { return &fakeConn{}, nil },
			RetrySeed: seed,
		})
		t.Cleanup(p.Close)
		return p
	}
	a, b, c := mk(7), mk(7), mk(8)
	var da, db, dc []time.Duration
	for i := 0; i < 32; i++ {
		da = append(da, a.backoffDelay(i%4))
		db = append(db, b.backoffDelay(i%4))
		dc = append(dc, c.backoffDelay(i%4))
	}
	if !slices.Equal(da, db) {
		t.Fatalf("same seed must replay the same backoff sequence:\n%v\n%v", da, db)
	}
	if slices.Equal(da, dc) {
		t.Fatal("different seeds should draw different jitter sequences")
	}
}

func TestTimeoutsWithDefaults(t *testing.T) {
	got := Timeouts{}.WithDefaults()
	want := Timeouts{Dial: DefaultDialTimeout, Op: DefaultOpTimeout, Wait: DefaultWaitTimeout}
	if got != want {
		t.Fatalf("zero Timeouts resolved to %+v, want defaults", got)
	}
	got = Timeouts{Dial: -1, Op: time.Second, Wait: -1}.WithDefaults()
	want = Timeouts{Dial: 0, Op: time.Second, Wait: 0}
	if got != want {
		t.Fatalf("got %+v, want negatives disabled and explicit values kept", got)
	}
}

func TestDoKeepsConnOnApplicationError(t *testing.T) {
	h := &harness{}
	p := h.pool(2)
	defer p.Close()
	appErr := errors.New("application error")
	attempts := 0
	err := p.Do(true, func(err error) bool { return !errors.Is(err, appErr) },
		func(c *fakeConn) error {
			attempts++
			return appErr
		})
	if !errors.Is(err, appErr) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d, want application error without retry", err, attempts)
	}
	s := p.Stats()
	if s.Discards != 0 || s.Idle != 1 {
		t.Fatalf("application error should keep the conn pooled: %+v", s)
	}
}
