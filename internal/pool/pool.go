// Package pool is the shared transport-connection pool under the stack's
// three clients — the database wire client (internal/sqldb/wire), the AJP
// web-to-servlet connector (internal/ajp) and the RMI client
// (internal/rmi). The paper's analysis hinges on identifying which tier
// saturates under each middleware configuration, so unlike the three
// channel pools it replaces, this one is instrumented: every pool counts
// dials, borrows, waits, cumulative wait time and discards, and samples
// borrow latency into a stats.Reservoir, so the tiers above can report
// where requests spend their time queueing.
//
// Semantics: connections are dialed lazily up to a fixed capacity;
// borrowers queue FIFO when the pool is exhausted; a connection returned
// as broken is destroyed and its capacity reclaimed immediately (a queued
// borrower dials a replacement rather than waiting for a healthy return);
// Close is safe against concurrent Get/Put — the pre-refactor wire.Pool
// could panic on send-to-closed-channel when Put raced Close.
package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// ErrClosed is returned by Get after Close.
var ErrClosed = errors.New("pool: closed")

// Config configures a Pool.
type Config[T any] struct {
	// Name labels the pool in Stats (e.g. "servlet->db").
	Name string
	// Dial opens one connection. It is called lazily, only when a borrower
	// finds no idle connection and capacity remains.
	Dial func() (T, error)
	// Destroy releases one connection (e.g. closes its socket). nil is a
	// no-op, for pooled values that need no cleanup.
	Destroy func(T)
	// Size caps concurrently open connections (default 1).
	Size int
}

// Pool is a fixed-capacity lazy connection pool, safe for concurrent use.
//
// Capacity is a token semaphore: a borrower first acquires a permit (the
// blocking point when the pool is saturated), then takes an idle
// connection or dials a fresh one. Because a broken Put returns the
// permit after destroying the connection, discards can never strand a
// queued borrower — it wakes and dials a replacement.
type Pool[T any] struct {
	name    string
	dial    func() (T, error)
	destroy func(T)
	limit   int

	permits chan struct{} // capacity tokens; blocked receivers queue FIFO
	done    chan struct{} // closed by Close to release waiters

	mu     sync.Mutex
	idle   []T // FIFO: borrow from the front, return to the back
	opened int
	closed bool

	dials     atomic.Int64
	gets      atomic.Int64
	waits     atomic.Int64
	waitNanos atomic.Int64
	discards  atomic.Int64
	retries   atomic.Int64
	borrow    *stats.Reservoir // borrow latency, seconds
}

// New creates a pool.
func New[T any](cfg Config[T]) *Pool[T] {
	if cfg.Dial == nil {
		panic("pool: nil Dial")
	}
	size := cfg.Size
	if size <= 0 {
		size = 1
	}
	p := &Pool[T]{
		name:    cfg.Name,
		dial:    cfg.Dial,
		destroy: cfg.Destroy,
		limit:   size,
		permits: make(chan struct{}, size),
		done:    make(chan struct{}),
		borrow:  stats.NewReservoir(1024, 1),
	}
	for i := 0; i < size; i++ {
		p.permits <- struct{}{}
	}
	return p
}

// Get borrows a connection, dialing one if none is idle and capacity
// remains. It blocks while the pool is exhausted and fails with ErrClosed
// once the pool closes.
func (p *Pool[T]) Get() (T, error) {
	var zero T
	p.gets.Add(1)
	start := time.Now()
	select {
	case <-p.permits:
	default:
		p.waits.Add(1)
		select {
		case <-p.permits:
			p.waitNanos.Add(time.Since(start).Nanoseconds())
		case <-p.done:
			return zero, ErrClosed
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.releasePermit()
		return zero, ErrClosed
	}
	if len(p.idle) > 0 {
		v := p.idle[0]
		p.idle = p.idle[1:]
		p.mu.Unlock()
		p.borrow.Add(time.Since(start).Seconds())
		return v, nil
	}
	p.opened++
	p.mu.Unlock()
	p.dials.Add(1)
	v, err := p.dial()
	if err != nil {
		p.mu.Lock()
		p.opened--
		p.mu.Unlock()
		p.releasePermit()
		return zero, err
	}
	p.borrow.Add(time.Since(start).Seconds())
	return v, nil
}

// Put returns a borrowed connection. Pass broken=true after a transport
// error: the connection is destroyed and its capacity reclaimed, so a
// queued borrower dials a fresh one.
func (p *Pool[T]) Put(v T, broken bool) {
	p.mu.Lock()
	if broken || p.closed {
		p.opened--
		p.mu.Unlock()
		if broken {
			p.discards.Add(1)
		}
		p.doDestroy(v)
	} else {
		p.idle = append(p.idle, v)
		p.mu.Unlock()
	}
	p.releasePermit()
}

// releasePermit returns one capacity token. The send never blocks:
// permits released never exceed permits acquired.
func (p *Pool[T]) releasePermit() {
	select {
	case p.permits <- struct{}{}:
	default:
	}
}

func (p *Pool[T]) doDestroy(v T) {
	if p.destroy != nil {
		p.destroy(v)
	}
}

// Do borrows a connection, runs fn on it, and returns it — discarded when
// fn's error is transport-level per isBroken (nil means every error is).
// With retry true, one transport failure is retried on a fresh
// connection, absorbing a stale pooled connection (the peer may have
// dropped it while idle).
func (p *Pool[T]) Do(retry bool, isBroken func(error) bool, fn func(T) error) error {
	v, err := p.Get()
	if err != nil {
		return err
	}
	err = fn(v)
	if err == nil || (isBroken != nil && !isBroken(err)) {
		p.Put(v, false)
		return err
	}
	p.Put(v, true)
	if !retry {
		return err
	}
	p.retries.Add(1)
	v, err2 := p.Get()
	if err2 != nil {
		return errors.Join(err2, err)
	}
	err2 = fn(v)
	p.Put(v, err2 != nil && (isBroken == nil || isBroken(err2)))
	return err2
}

// Reset destroys the idle connections without closing the pool: borrowers
// keep working and dial fresh. The cluster uses it when a replica rejoins
// after its server restarted — every idle connection is stale by then.
func (p *Pool[T]) Reset() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.opened -= len(idle)
	p.mu.Unlock()
	for _, v := range idle {
		p.doDestroy(v)
	}
}

// Close destroys idle connections and marks the pool closed: blocked
// borrowers fail with ErrClosed, and borrowed connections are destroyed
// as they are returned. Safe to call concurrently with Get/Put and more
// than once.
func (p *Pool[T]) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.opened -= len(idle)
	p.mu.Unlock()
	close(p.done)
	for _, v := range idle {
		p.doDestroy(v)
	}
}

// Stats is a point-in-time snapshot of a pool's gauges and counters.
// Counter fields are cumulative; Sub turns two snapshots into a window.
type Stats struct {
	Name     string `json:"name,omitempty"`
	Capacity int    `json:"capacity"`
	// InUse / Idle are gauges at snapshot time.
	InUse int `json:"in_use"`
	Idle  int `json:"idle"`
	// Dials counts connections opened; Gets counts borrows; Waits counts
	// borrows that blocked on an exhausted pool; WaitNanos is the
	// cumulative time those borrowers spent blocked — the saturation
	// signal; Discards counts broken connections destroyed; Retries
	// counts stale-connection retries.
	Dials     int64 `json:"dials"`
	Gets      int64 `json:"gets"`
	Waits     int64 `json:"waits"`
	WaitNanos int64 `json:"wait_nanos"`
	Discards  int64 `json:"discards"`
	Retries   int64 `json:"retries"`
	// Borrow latency from the reservoir, milliseconds.
	BorrowMeanMillis float64 `json:"borrow_mean_ms"`
	BorrowP95Millis  float64 `json:"borrow_p95_ms"`
	BorrowMaxMillis  float64 `json:"borrow_max_ms"`
}

// InUse returns the number of borrowed connections right now — the cheap
// instantaneous load gauge the cluster read router balances on (the full
// Stats snapshot walks the latency reservoir, too heavy for a hot path).
func (p *Pool[T]) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.opened - len(p.idle)
}

// Stats snapshots the pool.
func (p *Pool[T]) Stats() Stats {
	p.mu.Lock()
	idle, opened := len(p.idle), p.opened
	p.mu.Unlock()
	return Stats{
		Name:             p.name,
		Capacity:         p.limit,
		InUse:            opened - idle,
		Idle:             idle,
		Dials:            p.dials.Load(),
		Gets:             p.gets.Load(),
		Waits:            p.waits.Load(),
		WaitNanos:        p.waitNanos.Load(),
		Discards:         p.discards.Load(),
		Retries:          p.retries.Load(),
		BorrowMeanMillis: p.borrow.Mean() * 1000,
		BorrowP95Millis:  p.borrow.Percentile(95) * 1000,
		BorrowMaxMillis:  p.borrow.Max() * 1000,
	}
}

// Utilization returns InUse/Capacity in [0,1].
func (s Stats) Utilization() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return float64(s.InUse) / float64(s.Capacity)
}

// Sum aggregates snapshots of several pools into one figure — the rule the
// cluster client uses for its per-replica pools and the core lab for a
// replicated app tier's connector pools: capacities, gauges and counters
// sum; latency estimates take the worst pool (cumulative-sample estimates
// cannot be averaged meaningfully).
func Sum(name string, pools []Stats) Stats {
	agg := Stats{Name: name}
	for _, ps := range pools {
		agg.Capacity += ps.Capacity
		agg.InUse += ps.InUse
		agg.Idle += ps.Idle
		agg.Dials += ps.Dials
		agg.Gets += ps.Gets
		agg.Waits += ps.Waits
		agg.WaitNanos += ps.WaitNanos
		agg.Discards += ps.Discards
		agg.Retries += ps.Retries
		if ps.BorrowMeanMillis > agg.BorrowMeanMillis {
			agg.BorrowMeanMillis = ps.BorrowMeanMillis
		}
		if ps.BorrowP95Millis > agg.BorrowP95Millis {
			agg.BorrowP95Millis = ps.BorrowP95Millis
		}
		if ps.BorrowMaxMillis > agg.BorrowMaxMillis {
			agg.BorrowMaxMillis = ps.BorrowMaxMillis
		}
	}
	return agg
}

// Sub returns the counter deltas s−prev, keeping s's gauges and latency
// figures (which are cumulative-sample estimates, not differentiable).
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Dials -= prev.Dials
	d.Gets -= prev.Gets
	d.Waits -= prev.Waits
	d.WaitNanos -= prev.WaitNanos
	d.Discards -= prev.Discards
	d.Retries -= prev.Retries
	return d
}
