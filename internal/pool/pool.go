// Package pool is the shared transport-connection pool under the stack's
// three clients — the database wire client (internal/sqldb/wire), the AJP
// web-to-servlet connector (internal/ajp) and the RMI client
// (internal/rmi). The paper's analysis hinges on identifying which tier
// saturates under each middleware configuration, so unlike the three
// channel pools it replaces, this one is instrumented: every pool counts
// dials, borrows, waits, cumulative wait time and discards, and samples
// borrow latency into a stats.Reservoir, so the tiers above can report
// where requests spend their time queueing.
//
// Semantics: connections are dialed lazily up to a fixed capacity;
// borrowers queue FIFO when the pool is exhausted; a connection returned
// as broken is destroyed and its capacity reclaimed immediately (a queued
// borrower dials a replacement rather than waiting for a healthy return);
// Close is safe against concurrent Get/Put — the pre-refactor wire.Pool
// could panic on send-to-closed-channel when Put raced Close.
package pool

import (
	"errors"
	"math/rand/v2"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// ErrClosed is returned by Get after Close.
var ErrClosed = errors.New("pool: closed")

// ErrWaitTimeout is returned by Get when the pool stayed exhausted for the
// whole wait deadline. Before the deadline existed, a borrower queued on a
// pool whose every connection was stuck talking to a stalled peer blocked
// forever; now the caller gets a bounded, typed failure it can convert
// into a clean error (or a failover) instead of a hang.
var ErrWaitTimeout = errors.New("pool: wait timeout (pool exhausted)")

// Default deadlines. "A few hundred ms" of queueing on an exhausted pool
// already means the tier below is saturated or stalled; dial and op bounds
// are generous enough that only a genuinely wedged peer hits them.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultOpTimeout   = 10 * time.Second
	DefaultWaitTimeout = 500 * time.Millisecond
)

// Timeouts bounds the three ways a transport client can block on a slow or
// stalled peer: establishing a connection, one request/response round trip
// on it, and waiting for a pooled connection to free up. The zero value
// selects the package defaults; a negative field disables that bound.
// Every transport client in the stack (sqldb/wire, ajp, rmi) accepts one.
type Timeouts struct {
	Dial time.Duration
	Op   time.Duration
	Wait time.Duration
}

// WithDefaults resolves zero fields to the package defaults and negative
// fields to "no bound" (0).
func (t Timeouts) WithDefaults() Timeouts {
	norm := func(d, def time.Duration) time.Duration {
		if d == 0 {
			return def
		}
		if d < 0 {
			return 0
		}
		return d
	}
	return Timeouts{
		Dial: norm(t.Dial, DefaultDialTimeout),
		Op:   norm(t.Op, DefaultOpTimeout),
		Wait: norm(t.Wait, DefaultWaitTimeout),
	}
}

// IsTimeout reports whether err is a deadline expiry — a read/write that
// outlived its per-operation deadline, or a dial that outlived its dial
// timeout. Timeouts are transport errors (the connection's stream state is
// unknowable), but callers can distinguish them for telemetry.
func IsTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) || errors.Is(err, ErrWaitTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Config configures a Pool.
type Config[T any] struct {
	// Name labels the pool in Stats (e.g. "servlet->db").
	Name string
	// Dial opens one connection. It is called lazily, only when a borrower
	// finds no idle connection and capacity remains.
	Dial func() (T, error)
	// Destroy releases one connection (e.g. closes its socket). nil is a
	// no-op, for pooled values that need no cleanup.
	Destroy func(T)
	// Size caps concurrently open connections (default 1).
	Size int
	// WaitTimeout bounds how long Get blocks on an exhausted pool before
	// failing with ErrWaitTimeout (0: DefaultWaitTimeout; negative: wait
	// forever, the pre-deadline behavior).
	WaitTimeout time.Duration
	// RetryAttempts caps how many times Do retries a transport failure on a
	// fresh connection (0: default 1, the classic stale-connection retry;
	// negative: no retries at all, mirroring the Timeouts
	// negative-disables convention — for strictly non-idempotent traffic).
	RetryAttempts int
	// RetryBackoff is the base of the exponential backoff between retry
	// attempts (default 2ms, doubling per attempt with up to 50% added
	// jitter); RetryBackoffMax caps it (default 50ms). The first retry of a
	// round trip is immediate — a stale pooled connection is certain to
	// fail and certain to be fixed by redialing — and backoff starts with
	// the second, when the peer itself is suspect.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// RetrySeed, when non-zero, draws the backoff jitter from a private
	// seeded generator instead of the global one, so a fault-injection run
	// that depends on retry timing replays exactly (the same convention as
	// chaos.Schedule.Seed). Zero keeps the global source — fine for the
	// usual goal of de-synchronizing concurrent borrowers.
	RetrySeed uint64
}

// Pool is a fixed-capacity lazy connection pool, safe for concurrent use.
//
// Capacity is a token semaphore: a borrower first acquires a permit (the
// blocking point when the pool is saturated), then takes an idle
// connection or dials a fresh one. Because a broken Put returns the
// permit after destroying the connection, discards can never strand a
// queued borrower — it wakes and dials a replacement.
type Pool[T any] struct {
	name    string
	dial    func() (T, error)
	destroy func(T)
	limit   int

	waitTimeout time.Duration // 0: wait forever
	attempts    int           // total Do tries on transport failure
	backoffBase time.Duration
	backoffCap  time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand // nil: global jitter source

	permits chan struct{} // capacity tokens; blocked receivers queue FIFO
	done    chan struct{} // closed by Close to release waiters

	mu     sync.Mutex
	idle   []T // FIFO: borrow from the front, return to the back
	opened int
	closed bool

	dials        atomic.Int64
	gets         atomic.Int64
	waits        atomic.Int64
	waitNanos    atomic.Int64
	discards     atomic.Int64
	retries      atomic.Int64
	waitTimeouts atomic.Int64
	opTimeouts   atomic.Int64
	timeoutNanos atomic.Int64
	backoffs     atomic.Int64
	backoffNanos atomic.Int64
	borrow       *stats.Reservoir // borrow latency, seconds
}

// New creates a pool.
func New[T any](cfg Config[T]) *Pool[T] {
	if cfg.Dial == nil {
		panic("pool: nil Dial")
	}
	size := cfg.Size
	if size <= 0 {
		size = 1
	}
	waitTimeout := cfg.WaitTimeout
	if waitTimeout == 0 {
		waitTimeout = DefaultWaitTimeout
	} else if waitTimeout < 0 {
		waitTimeout = 0
	}
	attempts := 1 + cfg.RetryAttempts
	if cfg.RetryAttempts < 0 {
		attempts = 1 // negative disables retries, like Timeouts' negatives
	} else if cfg.RetryAttempts == 0 {
		attempts = 2 // one retry: the classic stale-connection absorb
	}
	backoffBase := cfg.RetryBackoff
	if backoffBase <= 0 {
		backoffBase = 2 * time.Millisecond
	}
	backoffCap := cfg.RetryBackoffMax
	if backoffCap <= 0 {
		backoffCap = 50 * time.Millisecond
	}
	p := &Pool[T]{
		name:        cfg.Name,
		dial:        cfg.Dial,
		destroy:     cfg.Destroy,
		limit:       size,
		waitTimeout: waitTimeout,
		attempts:    attempts,
		backoffBase: backoffBase,
		backoffCap:  backoffCap,
		permits:     make(chan struct{}, size),
		done:        make(chan struct{}),
		borrow:      stats.NewReservoir(1024, 1),
	}
	if cfg.RetrySeed != 0 {
		p.rng = rand.New(rand.NewPCG(cfg.RetrySeed, 0))
	}
	for i := 0; i < size; i++ {
		p.permits <- struct{}{}
	}
	return p
}

// Get borrows a connection, dialing one if none is idle and capacity
// remains. It blocks while the pool is exhausted and fails with ErrClosed
// once the pool closes.
func (p *Pool[T]) Get() (T, error) {
	var zero T
	p.gets.Add(1)
	start := time.Now()
	select {
	case <-p.permits:
	default:
		p.waits.Add(1)
		if p.waitTimeout > 0 {
			timer := time.NewTimer(p.waitTimeout)
			select {
			case <-p.permits:
				timer.Stop()
				p.waitNanos.Add(time.Since(start).Nanoseconds())
			case <-p.done:
				timer.Stop()
				return zero, ErrClosed
			case <-timer.C:
				// The whole pool spent the deadline borrowed — saturation
				// (or a stalled peer holding every connection). The time
				// spent queueing still counts toward the saturation signal.
				p.waitTimeouts.Add(1)
				p.waitNanos.Add(time.Since(start).Nanoseconds())
				return zero, ErrWaitTimeout
			}
		} else {
			select {
			case <-p.permits:
				p.waitNanos.Add(time.Since(start).Nanoseconds())
			case <-p.done:
				return zero, ErrClosed
			}
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.releasePermit()
		return zero, ErrClosed
	}
	if len(p.idle) > 0 {
		v := p.idle[0]
		p.idle = p.idle[1:]
		p.mu.Unlock()
		p.borrow.Add(time.Since(start).Seconds())
		return v, nil
	}
	p.opened++
	p.mu.Unlock()
	p.dials.Add(1)
	v, err := p.dial()
	if err != nil {
		p.mu.Lock()
		p.opened--
		p.mu.Unlock()
		p.releasePermit()
		return zero, err
	}
	p.borrow.Add(time.Since(start).Seconds())
	return v, nil
}

// Put returns a borrowed connection. Pass broken=true after a transport
// error: the connection is destroyed and its capacity reclaimed, so a
// queued borrower dials a fresh one.
func (p *Pool[T]) Put(v T, broken bool) {
	p.mu.Lock()
	if broken || p.closed {
		p.opened--
		p.mu.Unlock()
		if broken {
			p.discards.Add(1)
		}
		p.doDestroy(v)
	} else {
		p.idle = append(p.idle, v)
		p.mu.Unlock()
	}
	p.releasePermit()
}

// releasePermit returns one capacity token. The send never blocks:
// permits released never exceed permits acquired.
func (p *Pool[T]) releasePermit() {
	select {
	case p.permits <- struct{}{}:
	default:
	}
}

func (p *Pool[T]) doDestroy(v T) {
	if p.destroy != nil {
		p.destroy(v)
	}
}

// Do borrows a connection, runs fn on it, and returns it — discarded when
// fn's error is transport-level per isBroken (nil means every error is).
// With retry true, transport failures are retried on fresh connections up
// to Config.RetryAttempts times (default once, absorbing a stale pooled
// connection the peer dropped while idle). The first retry is immediate;
// later ones back off exponentially with jitter, since by then the peer
// itself is suspect and hammering it helps nobody.
//
// Deadline expiries are never retried, even with retry true: a round trip
// that outlived its op deadline may have been fully delivered to a
// merely-slow peer and still be executing, so re-sending it on a fresh
// connection would duplicate its side effects (a POST through AJP, an RMI
// call). Only failures that prove the request went nowhere — a stale
// connection's reset or EOF — are safe to absorb with a retry; a timeout
// surfaces immediately and the caller decides (eject, fail over, error).
func (p *Pool[T]) Do(retry bool, isBroken func(error) bool, fn func(T) error) error {
	return p.DoNotify(retry, isBroken, nil, fn)
}

// DoNotify is Do with an attempt hook: onAttempt (when non-nil) runs just
// before each try of fn — attempt 0 first, then once more per retry, after
// its backoff sleep. Callers that capture state whose validity is
// "no newer than the attempt" (the cluster's query-cache version stamps)
// re-capture there, so a retried round trip cannot carry a stamp taken
// before an intervening write.
func (p *Pool[T]) DoNotify(retry bool, isBroken func(error) bool, onAttempt func(int), fn func(T) error) error {
	var prev error
	for attempt := 0; ; attempt++ {
		if onAttempt != nil {
			onAttempt(attempt)
		}
		v, err := p.Get()
		if err != nil {
			if prev != nil {
				return errors.Join(err, prev)
			}
			return err
		}
		opStart := time.Now()
		err = fn(v)
		if err == nil || (isBroken != nil && !isBroken(err)) {
			p.Put(v, false)
			return err
		}
		p.Put(v, true)
		if IsTimeout(err) {
			p.opTimeouts.Add(1)
			p.timeoutNanos.Add(time.Since(opStart).Nanoseconds())
			return err // possibly delivered — retrying could double-apply
		}
		if !retry || attempt+1 >= p.attempts {
			return err
		}
		prev = err
		p.retries.Add(1)
		if attempt >= 1 {
			p.sleepBackoff(attempt - 1)
		}
	}
}

// backoffDelay computes the nth backoff: backoffBase·2^n (capped at
// backoffCap) plus up to 50% jitter. Jitter de-synchronizes the retrying
// borrowers of a shared pool so a recovered peer sees a ramp, not a
// thundering herd; with Config.RetrySeed set it comes from the pool's
// private generator, so the delay sequence replays exactly.
func (p *Pool[T]) backoffDelay(n int) time.Duration {
	d := p.backoffBase << n
	if d > p.backoffCap || d <= 0 {
		d = p.backoffCap
	}
	span := int64(d)/2 + 1
	if p.rng != nil {
		p.rngMu.Lock()
		d += time.Duration(p.rng.Int64N(span))
		p.rngMu.Unlock()
	} else {
		d += time.Duration(rand.Int64N(span))
	}
	return d
}

// sleepBackoff blocks for the nth backoff delay, or until the pool closes.
func (p *Pool[T]) sleepBackoff(n int) {
	d := p.backoffDelay(n)
	p.backoffs.Add(1)
	p.backoffNanos.Add(int64(d))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-p.done:
	}
}

// Reset destroys the idle connections without closing the pool: borrowers
// keep working and dial fresh. The cluster uses it when a replica rejoins
// after its server restarted — every idle connection is stale by then.
func (p *Pool[T]) Reset() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.opened -= len(idle)
	p.mu.Unlock()
	for _, v := range idle {
		p.doDestroy(v)
	}
}

// Close destroys idle connections and marks the pool closed: blocked
// borrowers fail with ErrClosed, and borrowed connections are destroyed
// as they are returned. Safe to call concurrently with Get/Put and more
// than once.
func (p *Pool[T]) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.opened -= len(idle)
	p.mu.Unlock()
	close(p.done)
	for _, v := range idle {
		p.doDestroy(v)
	}
}

// Stats is a point-in-time snapshot of a pool's gauges and counters.
// Counter fields are cumulative; Sub turns two snapshots into a window.
type Stats struct {
	Name     string `json:"name,omitempty"`
	Capacity int    `json:"capacity"`
	// InUse / Idle are gauges at snapshot time.
	InUse int `json:"in_use"`
	Idle  int `json:"idle"`
	// Dials counts connections opened; Gets counts borrows; Waits counts
	// borrows that blocked on an exhausted pool; WaitNanos is the
	// cumulative time those borrowers spent blocked — the saturation
	// signal; Discards counts broken connections destroyed; Retries
	// counts stale-connection retries.
	Dials     int64 `json:"dials"`
	Gets      int64 `json:"gets"`
	Waits     int64 `json:"waits"`
	WaitNanos int64 `json:"wait_nanos"`
	Discards  int64 `json:"discards"`
	Retries   int64 `json:"retries"`
	// WaitTimeouts counts borrows that gave up after the wait deadline;
	// OpTimeouts counts Do round trips that failed on an expired
	// read/write deadline, with TimeoutNanos the time those round trips
	// burned before expiring; Backoffs/BackoffNanos count the retry
	// backoff sleeps and the time spent in them.
	WaitTimeouts int64 `json:"wait_timeouts,omitempty"`
	OpTimeouts   int64 `json:"op_timeouts,omitempty"`
	TimeoutNanos int64 `json:"timeout_nanos,omitempty"`
	Backoffs     int64 `json:"backoffs,omitempty"`
	BackoffNanos int64 `json:"backoff_nanos,omitempty"`
	// Borrow latency from the reservoir, milliseconds.
	BorrowMeanMillis float64 `json:"borrow_mean_ms"`
	BorrowP95Millis  float64 `json:"borrow_p95_ms"`
	BorrowMaxMillis  float64 `json:"borrow_max_ms"`
}

// InUse returns the number of borrowed connections right now — the cheap
// instantaneous load gauge the cluster read router balances on (the full
// Stats snapshot walks the latency reservoir, too heavy for a hot path).
func (p *Pool[T]) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.opened - len(p.idle)
}

// Stats snapshots the pool.
func (p *Pool[T]) Stats() Stats {
	p.mu.Lock()
	idle, opened := len(p.idle), p.opened
	p.mu.Unlock()
	return Stats{
		Name:             p.name,
		Capacity:         p.limit,
		InUse:            opened - idle,
		Idle:             idle,
		Dials:            p.dials.Load(),
		Gets:             p.gets.Load(),
		Waits:            p.waits.Load(),
		WaitNanos:        p.waitNanos.Load(),
		Discards:         p.discards.Load(),
		Retries:          p.retries.Load(),
		WaitTimeouts:     p.waitTimeouts.Load(),
		OpTimeouts:       p.opTimeouts.Load(),
		TimeoutNanos:     p.timeoutNanos.Load(),
		Backoffs:         p.backoffs.Load(),
		BackoffNanos:     p.backoffNanos.Load(),
		BorrowMeanMillis: p.borrow.Mean() * 1000,
		BorrowP95Millis:  p.borrow.Percentile(95) * 1000,
		BorrowMaxMillis:  p.borrow.Max() * 1000,
	}
}

// Utilization returns InUse/Capacity in [0,1].
func (s Stats) Utilization() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return float64(s.InUse) / float64(s.Capacity)
}

// Sum aggregates snapshots of several pools into one figure — the rule the
// cluster client uses for its per-replica pools and the core lab for a
// replicated app tier's connector pools: capacities, gauges and counters
// sum; latency estimates take the worst pool (cumulative-sample estimates
// cannot be averaged meaningfully).
func Sum(name string, pools []Stats) Stats {
	agg := Stats{Name: name}
	for _, ps := range pools {
		agg.Capacity += ps.Capacity
		agg.InUse += ps.InUse
		agg.Idle += ps.Idle
		agg.Dials += ps.Dials
		agg.Gets += ps.Gets
		agg.Waits += ps.Waits
		agg.WaitNanos += ps.WaitNanos
		agg.Discards += ps.Discards
		agg.Retries += ps.Retries
		agg.WaitTimeouts += ps.WaitTimeouts
		agg.OpTimeouts += ps.OpTimeouts
		agg.TimeoutNanos += ps.TimeoutNanos
		agg.Backoffs += ps.Backoffs
		agg.BackoffNanos += ps.BackoffNanos
		if ps.BorrowMeanMillis > agg.BorrowMeanMillis {
			agg.BorrowMeanMillis = ps.BorrowMeanMillis
		}
		if ps.BorrowP95Millis > agg.BorrowP95Millis {
			agg.BorrowP95Millis = ps.BorrowP95Millis
		}
		if ps.BorrowMaxMillis > agg.BorrowMaxMillis {
			agg.BorrowMaxMillis = ps.BorrowMaxMillis
		}
	}
	return agg
}

// Sub returns the counter deltas s−prev, keeping s's gauges and latency
// figures (which are cumulative-sample estimates, not differentiable).
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Dials -= prev.Dials
	d.Gets -= prev.Gets
	d.Waits -= prev.Waits
	d.WaitNanos -= prev.WaitNanos
	d.Discards -= prev.Discards
	d.Retries -= prev.Retries
	d.WaitTimeouts -= prev.WaitTimeouts
	d.OpTimeouts -= prev.OpTimeouts
	d.TimeoutNanos -= prev.TimeoutNanos
	d.Backoffs -= prev.Backoffs
	d.BackoffNanos -= prev.BackoffNanos
	return d
}
