// Package cluster is the replication-aware database client: it fans one
// logical database out over N internal/sqldb wire backends with
// read-one-write-all semantics, the C-JDBC-style clustering middleware the
// paper's authors name as the way past the single-database bottleneck.
//
// Routing policy: reads load-balance across healthy replicas (least
// borrowed connections first, round-robin on ties, using the transport
// pool's counters, skipping replicas whose rejoin sync is still running);
// writes — and LOCK/UNLOCK-bracketed sections with write intent — broadcast
// to every healthy replica, serialized per table by a cluster-wide
// write-order lock so all backends apply conflicting writes in one global
// order. The broadcast itself is batched: the statement fans out to all
// replicas concurrently and the acks are awaited together, so a broadcast
// costs one round-trip time instead of N sequential ones. Ordering is
// unaffected — conflicting writes are serialized by the write-order locks
// held across the whole fan-out, so no replica can observe two conflicting
// statements in different orders. That plus identical seeding is what keeps
// replicas bit-identical (AUTO_INCREMENT assignment included) without a
// database-level replication log.
//
// Read-only transactions (BeginReadOnly / WithReadTx) skip the write-order
// locks entirely: they open on the session's pinned replica alone, where
// the engine's MVCC serves their SELECTs from committed snapshots — no
// broadcast, no cluster-wide serialization, no lock-table interaction.
//
// A replica that fails at the transport level is ejected: reads fail over
// transparently, writes continue on the remaining replicas (or error, with
// StrictWrites). An ejected replica rejoins through Rejoin, which replays a
// healthy replica's data over the wire — the same replica-sync path a
// fresh dbserver -peers uses at startup.
package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pool"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
	"repro/internal/telemetry"
)

// ErrNoReplicas is returned when every replica has been ejected.
var ErrNoReplicas = errors.New("cluster: no healthy replicas")

// ErrDegraded fast-fails writes while a StrictWrites cluster is degraded:
// one or more replicas are ejected, so no write can satisfy the policy.
// Reads keep flowing off the healthy replicas; the cluster exits degraded
// mode when Rejoin restores the full replica set. Callers can surface it
// as "service read-only" instead of a cascade of per-write errors.
var ErrDegraded = errors.New("cluster: degraded (read-only): strict write policy unsatisfiable until ejected replicas rejoin")

// DefaultSyncTimeout bounds a rejoin's data copy. Syncing a testbed-scale
// data set takes well under a second; half a minute means the source or
// the joiner stalled.
const DefaultSyncTimeout = 30 * time.Second

// Config configures a Client.
type Config struct {
	// DSN is the multi-backend address list: "host:port[,host:port...]".
	// A single address degenerates to a plain pooled client.
	DSN string
	// PoolSize bounds connections per replica (default 12).
	PoolSize int
	// StrictWrites makes a write error when any replica fails mid-broadcast
	// (after completing the broadcast on the remaining healthy replicas, so
	// the survivors stay mutually consistent), and puts the cluster in
	// read-only degraded mode (ErrDegraded) until the replica set is whole
	// again. The default policy is write-all-available: the failed replica
	// is ejected and the write succeeds on the rest.
	StrictWrites bool
	// Timeouts bounds dials, per-operation round trips and pool borrow
	// waits on every replica pool (zero fields: pool-package defaults;
	// negative: unbounded). A stalled replica thus surfaces as a transport
	// error — and is ejected — instead of hanging a broadcast.
	Timeouts pool.Timeouts
	// SlowThreshold ejects a replica whose broadcast ack lags the fastest
	// ack (or whose read exceeds the threshold outright) by more than this
	// — the slow-but-not-stalled replica that drags every write to its
	// speed, since a broadcast completes at the slowest ack. 0 disables
	// latency-based ejection (the default: only transport failures eject).
	SlowThreshold time.Duration
	// SyncTimeout bounds a Rejoin's data copy (0: DefaultSyncTimeout;
	// negative: unbounded). On expiry the replica is left cleanly ejected
	// and marked half-synced rather than promoted.
	SyncTimeout time.Duration
	// QueryCache bounds the client's query-result cache (cache.go): cached
	// SELECT results are served while every referenced table's commit-time
	// version is unchanged. 0 (the default) disables the cache; version
	// publication still runs so other clients' caches — and the page-cache
	// content epoch — stay coherent.
	QueryCache int
	// ShardBy maps table name -> shard-key column for horizontal
	// partitioning (shard.go). Consulted only when DSN names more than one
	// shard group (';'-separated); tables absent from the map are global —
	// replicated on every shard. Names are case-insensitive.
	ShardBy map[string]string
}

// ParseDSN splits a multi-backend DSN into its replica addresses.
func ParseDSN(dsn string) []string {
	var addrs []string
	for _, a := range strings.Split(dsn, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// replica is one backend: its pool, health, and routing counters.
type replica struct {
	id   int
	addr string
	pool *wire.Pool

	healthy   atomic.Bool
	reads     atomic.Int64
	writes    atomic.Int64
	ejections atomic.Int64
	lagNanos  atomic.Int64
}

// Client is the replicated database client. It is safe for concurrent use
// and presents the same surface as a single wire.Pool: Exec/ExecCached for
// pool-routed statements, Get/Put for LOCK-bracketed logical sessions, and
// Prepare for shared statement handles.
type Client struct {
	// sh, when non-nil, makes this client a sharded facade (shard.go):
	// public methods route through the shard set's per-shard inner clients
	// and the flat replica machinery below goes unused.
	sh *shardSet

	replicas []*replica
	rr       atomic.Uint64
	locks    *writeLocks
	routes   routes
	qcache   *queryCache // nil when Config.QueryCache == 0
	strict   bool
	slow     time.Duration // SlowThreshold; 0 = disabled
	syncTO   time.Duration // resolved SyncTimeout; 0 = unbounded
	// topo serializes broadcasts (read side) against Rejoin's resync
	// (write side), so a joining replica never sees a half-applied write.
	topo   sync.RWMutex
	closed atomic.Bool

	// degraded is the strict-policy read-only latch: set when a write
	// fails (or would fail) the strict policy, cleared when Rejoin makes
	// the replica set whole. Writes fast-fail with ErrDegraded while set.
	degraded        atomic.Bool
	degradedEntries atomic.Int64
	degradedExits   atomic.Int64
	degradedRejects atomic.Int64
	slowEjections   atomic.Int64

	// Broadcast batching and read-only transaction counters (telemetry).
	broadcasts    atomic.Int64
	broadcastAcks atomic.Int64
	roTxns        atomic.Int64

	// Rejoin data-copy path counters: how many rejoins the WAL delta fast
	// path served, how many needed the full table copy, and the statements
	// the delta path shipped.
	walDeltaSyncs atomic.Int64
	walFullSyncs  atomic.Int64
	walDeltaStmts atomic.Int64
}

// ClientStats reports the client's broadcast batching and read-only
// transaction counters: Broadcasts is the number of write fan-outs,
// BroadcastAcks the per-replica acknowledgements they collected (acks ÷
// broadcasts = average batch size), ReadOnlyTxns the transactions that ran
// on one replica without any write-order locks.
type ClientStats struct {
	Broadcasts    int64 `json:"broadcasts"`
	BroadcastAcks int64 `json:"broadcast_acks"`
	ReadOnlyTxns  int64 `json:"readonly_txns"`
	// SlowEjections counts replicas ejected for lagging SlowThreshold
	// behind the pack rather than transport-failing. The Degraded* fields
	// track the strict-policy read-only latch: entries/exits count mode
	// flips, rejects counts writes fast-failed with ErrDegraded, and
	// Degraded is the latch's current state.
	SlowEjections   int64 `json:"slow_ejections,omitempty"`
	DegradedEntries int64 `json:"degraded_entries,omitempty"`
	DegradedExits   int64 `json:"degraded_exits,omitempty"`
	DegradedRejects int64 `json:"degraded_rejects,omitempty"`
	Degraded        bool  `json:"degraded,omitempty"`
	// Query-result cache counters (zero when the cache is disabled):
	// hits served from a validated entry, misses that went to a replica,
	// invalidations of entries whose table versions moved, and bypasses —
	// reads forced live because the session's transaction write-held a
	// referenced table.
	QueryCacheHits          int64 `json:"query_cache_hits,omitempty"`
	QueryCacheMisses        int64 `json:"query_cache_misses,omitempty"`
	QueryCacheInvalidations int64 `json:"query_cache_invalidations,omitempty"`
	QueryCacheBypasses      int64 `json:"query_cache_bypasses,omitempty"`
	// Shard routing counters (set only on a sharded client, shard.go):
	// statements pinned to one owning shard, scatter-gather SELECT
	// fan-outs, cross-shard broadcast writes/DDL, and transactions
	// committed via two-phase commit.
	Shards         int   `json:"shards,omitempty"`
	ShardSingle    int64 `json:"shard_single,omitempty"`
	ShardScatter   int64 `json:"shard_scatter,omitempty"`
	ShardBroadcast int64 `json:"shard_broadcast,omitempty"`
	Shard2PCTxns   int64 `json:"shard_2pc_txns,omitempty"`
	// Rejoin data-copy counters: delta syncs served by WAL log shipping
	// (and the statements they replayed) versus full table copies.
	WALDeltaSyncs int64 `json:"wal_delta_syncs,omitempty"`
	WALFullSyncs  int64 `json:"wal_full_syncs,omitempty"`
	WALDeltaStmts int64 `json:"wal_delta_stmts,omitempty"`
}

// ClientStats snapshots the counters. A sharded client sums its inner
// clients' counters and adds the shard routing view.
func (c *Client) ClientStats() ClientStats {
	if c.sh != nil {
		var s ClientStats
		for _, in := range c.sh.shards {
			is := in.ClientStats()
			s.Broadcasts += is.Broadcasts
			s.BroadcastAcks += is.BroadcastAcks
			s.ReadOnlyTxns += is.ReadOnlyTxns
			s.SlowEjections += is.SlowEjections
			s.DegradedEntries += is.DegradedEntries
			s.DegradedExits += is.DegradedExits
			s.DegradedRejects += is.DegradedRejects
			s.Degraded = s.Degraded || is.Degraded
			s.QueryCacheHits += is.QueryCacheHits
			s.QueryCacheMisses += is.QueryCacheMisses
			s.QueryCacheInvalidations += is.QueryCacheInvalidations
			s.QueryCacheBypasses += is.QueryCacheBypasses
			s.WALDeltaSyncs += is.WALDeltaSyncs
			s.WALFullSyncs += is.WALFullSyncs
			s.WALDeltaStmts += is.WALDeltaStmts
		}
		s.Shards = len(c.sh.shards)
		s.ShardSingle = c.sh.single.Load()
		s.ShardScatter = c.sh.scatter.Load()
		s.ShardBroadcast = c.sh.broadcast.Load()
		s.Shard2PCTxns = c.sh.txns2pc.Load()
		return s
	}
	s := ClientStats{
		Broadcasts:      c.broadcasts.Load(),
		BroadcastAcks:   c.broadcastAcks.Load(),
		ReadOnlyTxns:    c.roTxns.Load(),
		SlowEjections:   c.slowEjections.Load(),
		DegradedEntries: c.degradedEntries.Load(),
		DegradedExits:   c.degradedExits.Load(),
		DegradedRejects: c.degradedRejects.Load(),
		Degraded:        c.degraded.Load(),
		WALDeltaSyncs:   c.walDeltaSyncs.Load(),
		WALFullSyncs:    c.walFullSyncs.Load(),
		WALDeltaStmts:   c.walDeltaStmts.Load(),
	}
	if q := c.qcache; q != nil {
		s.QueryCacheHits = q.hits.Load()
		s.QueryCacheMisses = q.misses.Load()
		s.QueryCacheInvalidations = q.invalidations.Load()
		s.QueryCacheBypasses = q.bypasses.Load()
	}
	return s
}

// Degraded reports whether the strict-policy read-only latch is set (on
// any shard, for a sharded client).
func (c *Client) Degraded() bool {
	if c.sh != nil {
		for _, in := range c.sh.shards {
			if in.Degraded() {
				return true
			}
		}
		return false
	}
	return c.degraded.Load()
}

// New creates a client over the DSN's replicas with default policy.
func New(dsn string, poolSize int) *Client {
	return NewWithConfig(Config{DSN: dsn, PoolSize: poolSize})
}

// NewWithConfig creates a client. A DSN naming more than one ';'-separated
// shard group builds a sharded client (shard.go) whose inner per-shard
// clients each get this same configuration over their own replica subset.
func NewWithConfig(cfg Config) *Client {
	if groups := ParseShardDSN(cfg.DSN); len(groups) > 1 {
		return newSharded(cfg, groups)
	}
	addrs := ParseDSN(cfg.DSN)
	if len(addrs) == 0 {
		addrs = []string{""}
	}
	size := cfg.PoolSize
	if size <= 0 {
		size = 12
	}
	syncTO := cfg.SyncTimeout
	if syncTO == 0 {
		syncTO = DefaultSyncTimeout
	} else if syncTO < 0 {
		syncTO = 0
	}
	// Write-order locks are shared with every other client over the same
	// replica set (one per app-tier backend), so conflicting writes apply
	// in one process-wide global order — see lockRegistry.
	c := &Client{
		locks:  acquireWriteLocks(addrs),
		qcache: newQueryCache(cfg.QueryCache),
		strict: cfg.StrictWrites,
		slow:   cfg.SlowThreshold,
		syncTO: syncTO,
	}
	for i, addr := range addrs {
		r := &replica{id: i, addr: addr, pool: wire.NewPoolT(addr, size, cfg.Timeouts)}
		r.healthy.Store(true)
		c.replicas = append(c.replicas, r)
	}
	return c
}

// Replicas returns the number of configured replicas (summed over shards
// on a sharded client).
func (c *Client) Replicas() int {
	if c.sh != nil {
		n := 0
		for _, in := range c.sh.shards {
			n += in.Replicas()
		}
		return n
	}
	return len(c.replicas)
}

// Healthy returns the number of replicas currently accepting traffic.
func (c *Client) Healthy() int {
	if c.sh != nil {
		n := 0
		for _, in := range c.sh.shards {
			n += in.Healthy()
		}
		return n
	}
	n := 0
	for _, r := range c.replicas {
		if r.healthy.Load() {
			n++
		}
	}
	return n
}

// Shards returns the number of shard groups (1 for an unsharded client).
func (c *Client) Shards() int {
	if c.sh != nil {
		return len(c.sh.shards)
	}
	return 1
}

// pickRead selects the read replica: the healthy replica with the fewest
// borrowed connections (the pool's InUse gauge), round-robin on ties.
// Replicas whose rejoin sync is still running are skipped even when marked
// healthy — another client over the same DSN may be mid-copy onto them, and
// a read landing there would see a half-synced data set.
func (c *Client) pickRead() *replica {
	var best *replica
	bestUse := 0
	offset := int(c.rr.Add(1))
	for i := range c.replicas {
		r := c.replicas[(i+offset)%len(c.replicas)]
		if !r.healthy.Load() || c.locks.syncing(r.addr) {
			continue
		}
		use := r.pool.InUse()
		if best == nil || use < bestUse {
			best, bestUse = r, use
		}
	}
	return best
}

// eject marks a replica unhealthy after a transport failure and reports
// whether it did. A single-replica client never ejects: there is nothing
// to fail over to, so it degrades like a plain pool — errors surface and
// the pool re-dials when the server returns. Its pool keeps its
// statistics; Rejoin resets the stale connections.
func (c *Client) eject(r *replica) bool {
	if len(c.replicas) == 1 {
		return false
	}
	if r.healthy.CompareAndSwap(true, false) {
		r.ejections.Add(1)
	}
	return true
}

// ejectSlow ejects a replica for lagging, not failing: its transport still
// answers, but so far behind the pack (or the threshold) that keeping it
// in rotation drags every broadcast — which completes at the slowest ack —
// down to its speed.
func (c *Client) ejectSlow(r *replica) {
	if len(c.replicas) == 1 {
		return
	}
	if r.healthy.CompareAndSwap(true, false) {
		r.ejections.Add(1)
		c.slowEjections.Add(1)
	}
}

// noteSlow applies the latency-based health policy to a finished fan-out:
// any replica whose successful ack trailed the fastest by more than
// SlowThreshold is ejected. Transport failures are handled by collect.
func (c *Client) noteSlow(outs []fanResult) {
	if c.slow <= 0 {
		return
	}
	minDur := time.Duration(-1)
	for i := range outs {
		if outs[i].ran && !isTransport(outs[i].err) && (minDur < 0 || outs[i].dur < minDur) {
			minDur = outs[i].dur
		}
	}
	if minDur < 0 {
		return
	}
	for i := range outs {
		if outs[i].ran && !isTransport(outs[i].err) && outs[i].dur-minDur > c.slow {
			c.ejectSlow(c.replicas[i])
		}
	}
}

// enterDegraded latches the strict-policy read-only mode.
func (c *Client) enterDegraded() {
	if c.strict && len(c.replicas) > 1 && c.degraded.CompareAndSwap(false, true) {
		c.degradedEntries.Add(1)
	}
}

// exitDegradedIfWhole clears the degraded latch once every replica is back
// in the healthy set. It runs on rejoin and as writeGate's self-heal: the
// latch exists to protect a cluster that is missing writes somewhere, so a
// whole replica set must never stay read-only (a stale latch with all
// replicas healthy — e.g. a racing rejoin completing between a broadcast's
// ejection and its enterDegraded — would otherwise wedge writes forever,
// since no replica is left for Rejoin to bring back).
func (c *Client) exitDegradedIfWhole() {
	if c.Healthy() == len(c.replicas) && c.degraded.CompareAndSwap(true, false) {
		c.degradedExits.Add(1)
	}
}

// writeGate fast-fails writes that cannot satisfy the strict policy:
// once any replica is ejected, a strict write is doomed, so it fails with
// ErrDegraded before acquiring locks or touching the wire — reads keep
// flowing off the survivors. A degraded latch outliving the last rejoin
// (every replica healthy again) is stale and self-heals here instead of
// rejecting writes on a whole cluster. Under the default
// write-all-available policy the gate is always open.
func (c *Client) writeGate() error {
	if !c.strict || len(c.replicas) == 1 {
		return nil
	}
	if c.Healthy() == len(c.replicas) {
		c.exitDegradedIfWhole()
		return nil
	}
	c.enterDegraded()
	c.degradedRejects.Add(1)
	return ErrDegraded
}

// isTransport reports whether err is a transport-level failure (as opposed
// to a database-side error, which is deterministic across replicas).
func isTransport(err error) bool {
	return err != nil && !wire.IsServerError(err)
}

// ejectable reports transport failures that implicate the replica itself.
// A pool wait timeout is client-side saturation — every pooled connection
// is busy, which says nothing about the replica's health — so on the read
// path it surfaces as an error without ejecting anybody. Write broadcasts
// override this: whatever the error class, a replica that failed to apply
// a statement the others applied has diverged and is ejected (see
// collect's applied flag).
func ejectable(err error) bool {
	return isTransport(err) && !errors.Is(err, pool.ErrWaitTimeout)
}

// Exec routes one statement as SQL text. See ExecCached for routing.
func (c *Client) Exec(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	return c.exec(query, args, false)
}

// ExecCached routes one statement over the prepared-statement fast path:
// reads run on one load-balanced replica, writes broadcast to all healthy
// replicas in order under the table write-order lock.
func (c *Client) ExecCached(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	return c.exec(query, args, true)
}

func (c *Client) exec(query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	if c.sh != nil {
		return c.sh.exec(c, query, args, cached)
	}
	rt := c.routes.of(query)
	// One replica: no routing decision exists — skip write ordering and
	// behave like a plain pool. Classification still happens (one memoized
	// map load): reads consult the query cache, and writes publish their
	// table versions so caches and the content epoch stay coherent even on
	// a degenerate single-backend cluster. The read/write counters still
	// tick — a sharded tier of single-replica groups reports its per-shard
	// routing split through them.
	if len(c.replicas) == 1 {
		if rt.kind == kindRead {
			c.replicas[0].reads.Add(1)
			return c.cachedRead(rt, query, args, false, func(restamp func()) (*sqldb.Result, error) {
				return c.poolExecN(c.replicas[0], query, args, cached, func(int) { restamp() })
			})
		}
		if rt.kind == kindWrite {
			c.replicas[0].writes.Add(1)
		}
		res, err := c.poolExec(c.replicas[0], query, args, cached)
		// Publish unless the statement deterministically failed database-side;
		// a transport failure may have applied before the connection died.
		if rt.kind == kindWrite && (err == nil || isTransport(err)) {
			c.locks.bump(rt.tables)
		}
		return res, err
	}
	if rt.kind == kindRead {
		return c.cachedRead(rt, query, args, false, func(restamp func()) (*sqldb.Result, error) {
			return c.execReadN(query, args, cached, restamp)
		})
	}
	// LOCK/UNLOCK and transaction control arriving outside a Get/Put
	// session would strand lock or transaction state on pooled connections;
	// sessions are the supported bracket.
	switch rt.kind {
	case kindLock, kindUnlock, kindBegin, kindTxnEnd:
		return nil, fmt.Errorf("cluster: %s requires a session (Get/Put)",
			strings.Fields(query)[0])
	}
	return c.execWrite(query, args, cached, rt)
}

// execRead runs a read on one replica, failing over (and ejecting) on
// transport errors until a healthy replica answers.
func (c *Client) execRead(query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	return c.execReadN(query, args, cached, nil)
}

// execReadN is execRead with a cache restamp hook, fired before every
// attempt: each pool retry (via the wire notify path) and each failover
// replica (readWith re-invokes run, whose first onAttempt is attempt 0).
func (c *Client) execReadN(query string, args []sqldb.Value, cached bool, restamp func()) (*sqldb.Result, error) {
	var onAttempt func(int)
	if restamp != nil {
		onAttempt = func(int) { restamp() }
	}
	return c.readWith(func(r *replica) (*sqldb.Result, error) {
		return c.poolExecN(r, query, args, cached, onAttempt)
	})
}

// readWith runs one read via run on a load-balanced healthy replica,
// ejecting and failing over on transport errors. A pool wait timeout
// surfaces without ejection (the replica is fine; this client is
// saturated), and a read slower than SlowThreshold ejects the replica
// from future routing while still returning its answer.
func (c *Client) readWith(run func(*replica) (*sqldb.Result, error)) (*sqldb.Result, error) {
	for {
		r := c.pickRead()
		if r == nil {
			return nil, ErrNoReplicas
		}
		start := time.Now()
		res, err := run(r)
		if isTransport(err) {
			if ejectable(err) && c.eject(r) {
				continue // fail over to the next healthy replica
			}
			return nil, err
		}
		if c.slow > 0 && time.Since(start) > c.slow {
			c.ejectSlow(r)
		}
		r.reads.Add(1)
		return res, err
	}
}

// execWrite broadcasts a write to every healthy replica in replica order,
// holding the statement's table write-order locks across the broadcast.
func (c *Client) execWrite(query string, args []sqldb.Value, cached bool, rt route) (*sqldb.Result, error) {
	return c.writeWith(rt, func(r *replica) (*sqldb.Result, error) {
		return c.poolExec(r, query, args, cached)
	})
}

// fanResult is one replica's outcome within a batched broadcast.
type fanResult struct {
	res *sqldb.Result
	err error
	dur time.Duration
	ran bool
}

// fanOut runs run once per eligible replica — concurrently when more than
// one is eligible, inline otherwise. This is the batched broadcast: the
// statement ships to every replica at once and the acks are awaited
// together, so the broadcast costs one round-trip time instead of N
// sequential ones. Per-replica ordering of conflicting writes is preserved
// by the write-order locks every caller holds across the whole fan-out.
// Each goroutine writes only its own index of outs, so no synchronization
// beyond the WaitGroup is needed.
func fanOut(replicas []*replica, eligible func(*replica) bool, run func(*replica) (*sqldb.Result, error)) []fanResult {
	outs := make([]fanResult, len(replicas))
	n, last := 0, -1
	for i, r := range replicas {
		if eligible(r) {
			outs[i].ran = true
			n, last = n+1, i
		}
	}
	if n == 1 {
		start := time.Now()
		res, err := run(replicas[last])
		outs[last] = fanResult{res: res, err: err, dur: time.Since(start), ran: true}
		return outs
	}
	var wg sync.WaitGroup
	for i := range replicas {
		if !outs[i].ran {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			res, err := run(replicas[i])
			outs[i] = fanResult{res: res, err: err, dur: time.Since(start), ran: true}
		}(i)
	}
	wg.Wait()
	return outs
}

// bcast accumulates one broadcast's outcome: the canonical answer (the
// lowest-id participating replica's — deterministic regardless of ack
// arrival order), per-replica lag behind the fastest ack, and whether any
// replica transport-failed — the accounting shared by pool-level and
// session-level broadcasts.
type bcast struct {
	res      *sqldb.Result
	first    error
	lastErr  error
	answered bool
	failed   bool
}

// ok records a replica's (server-deterministic) answer. lag is how far this
// replica's ack trailed the broadcast's fastest.
func (b *bcast) ok(r *replica, res *sqldb.Result, err error, countWrite bool, lag time.Duration) {
	if countWrite {
		r.writes.Add(1)
	}
	if !b.answered {
		b.res, b.first, b.answered = res, err, true
	}
	if lag > 0 {
		r.lagNanos.Add(lag.Nanoseconds())
	}
}

// fail records a replica's transport failure.
func (b *bcast) fail(err error) { b.failed, b.lastErr = true, err }

// collect folds a fan-out into the accounting, in replica order: transport
// failures invoke onFail (ejection at pool level, session poisoning at
// session level), everything else is a deterministic database answer.
// onFail's applied flag reports whether some other replica answered this
// fan-out — the consistency signal: a replica that transport-failed while
// the statement applied elsewhere has missed a write and must leave the
// healthy set whatever the error class, or it would keep serving (and
// re-broadcasting from) a diverged data set.
func (b *bcast) collect(outs []fanResult, replicas []*replica, countWrite bool, onFail func(r *replica, err error, applied bool)) {
	minDur := time.Duration(-1)
	for i := range outs {
		if outs[i].ran && !isTransport(outs[i].err) && (minDur < 0 || outs[i].dur < minDur) {
			minDur = outs[i].dur
		}
	}
	applied := minDur >= 0
	for i, o := range outs {
		if !o.ran {
			continue
		}
		r := replicas[i]
		if isTransport(o.err) {
			onFail(r, o.err, applied)
			b.fail(o.err)
			continue
		}
		b.ok(r, o.res, o.err, countWrite, o.dur-minDur)
	}
}

// noteBroadcast counts one fan-out and its successful acknowledgements for
// the batch-size telemetry.
func (c *Client) noteBroadcast(outs []fanResult) {
	n := 0
	for i := range outs {
		if outs[i].ran && !isTransport(outs[i].err) {
			n++
		}
	}
	if n > 0 {
		c.broadcasts.Add(1)
		c.broadcastAcks.Add(int64(n))
	}
}

// result resolves the broadcast under the write policy. The strict-mode
// degraded latch only ever engages here when the broadcast both applied
// somewhere AND failed somewhere — and in that case the failure handlers
// ejected every failed replica (missed-write ejection), so Rejoin always
// has an unhealthy replica to bring back and clear the latch through; an
// all-failed broadcast (nothing applied, replicas still identical) returns
// the transport error without latching.
func (b *bcast) result(c *Client) (*sqldb.Result, error) {
	if !b.answered {
		if b.lastErr != nil {
			return nil, b.lastErr
		}
		return nil, ErrNoReplicas
	}
	if b.failed && c.strict {
		c.enterDegraded()
		return nil, fmt.Errorf("cluster: strict write policy: replica failed mid-broadcast (applied on %d remaining)", c.Healthy())
	}
	return b.res, b.first
}

// writeWith broadcasts run to every healthy replica concurrently under the
// route's table write-order locks (held across the whole fan-out, which is
// what keeps conflicting writes in one global order on every replica).
func (c *Client) writeWith(rt route, run func(*replica) (*sqldb.Result, error)) (*sqldb.Result, error) {
	if err := c.writeGate(); err != nil {
		return nil, err
	}
	c.topo.RLock()
	defer c.topo.RUnlock()
	release := c.locks.acquire(rt.tables)
	defer release()

	outs := fanOut(c.replicas, func(r *replica) bool { return r.healthy.Load() }, run)
	var b bcast
	b.collect(outs, c.replicas, true, func(r *replica, err error, applied bool) {
		// applied: the write landed on another replica, so this one has
		// missed it — eject even on a non-ejectable error (pool wait
		// timeout); only a rejoin sync can make it bit-identical again.
		if applied || ejectable(err) {
			c.eject(r)
		}
	})
	c.noteSlow(outs)
	c.noteBroadcast(outs)
	// Publish the write's table versions (cache invalidation + content
	// epoch) unless it deterministically failed database-side: an answered
	// broadcast with a nil canonical error committed, and an all-transport-
	// failure broadcast may have applied before the connections died —
	// conservative publication can only cost a cache miss, never staleness.
	// Still inside the write-order locks, so the bump lands in write order.
	if b.first == nil && (b.answered || b.failed) {
		c.locks.bump(rt.tables)
	}
	return b.result(c)
}

func (c *Client) poolExec(r *replica, query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	return c.poolExecN(r, query, args, cached, nil)
}

// poolExecN is poolExec with the pool's per-attempt hook threaded through,
// so the cache's version stamp can be re-captured for the attempt that
// actually produces the rows.
func (c *Client) poolExecN(r *replica, query string, args []sqldb.Value, cached bool, onAttempt func(int)) (*sqldb.Result, error) {
	if cached {
		return r.pool.ExecCachedNotify(onAttempt, query, args...)
	}
	return r.pool.ExecNotify(onAttempt, query, args...)
}

// Prepare returns a shared statement handle, with each replica's pool
// statement resolved once up front (no network happens here). Statement
// ids live on the individual wire connections underneath, so a replica's
// fresh or recycled connections transparently re-prepare — including
// after ejection and rejoin.
func (c *Client) Prepare(query string) *Stmt {
	if c.sh != nil {
		// Sharded: routing is per-call (the shard depends on the args), so
		// the handle defers to the shard router; each shard's inner pools
		// still cache the prepared statement by text.
		return &Stmt{c: c, query: query, rt: c.routes.of(query)}
	}
	per := make([]*wire.Stmt, len(c.replicas))
	for i, r := range c.replicas {
		per[i] = r.pool.Prepare(query)
	}
	return &Stmt{c: c, query: query, rt: c.routes.of(query), per: per}
}

// Stmt is a cluster-level prepared statement: the routing decision plus
// one pool statement per replica. Pool statements survive replica churn
// (ids are per-connection state), so the handle never needs refreshing.
type Stmt struct {
	c     *Client
	query string
	rt    route
	per   []*wire.Stmt // by replica id
}

// Query returns the statement's SQL text.
func (s *Stmt) Query() string { return s.query }

// Exec routes the prepared statement like Client.ExecCached, executing
// through the pre-resolved per-replica handles.
func (s *Stmt) Exec(args ...sqldb.Value) (*sqldb.Result, error) {
	if s.c.sh != nil {
		return s.c.sh.exec(s.c, s.query, args, true)
	}
	if len(s.c.replicas) == 1 {
		if s.rt.kind == kindRead {
			return s.c.cachedRead(s.rt, s.query, args, false, func(restamp func()) (*sqldb.Result, error) {
				return s.per[0].ExecNotify(func(int) { restamp() }, args...)
			})
		}
		res, err := s.per[0].Exec(args...)
		if s.rt.kind == kindWrite && (err == nil || isTransport(err)) {
			s.c.locks.bump(s.rt.tables)
		}
		return res, err
	}
	run := func(r *replica) (*sqldb.Result, error) { return s.per[r.id].Exec(args...) }
	if s.rt.kind == kindRead {
		return s.c.cachedRead(s.rt, s.query, args, false, func(restamp func()) (*sqldb.Result, error) {
			return s.c.readWith(func(r *replica) (*sqldb.Result, error) {
				return s.per[r.id].ExecNotify(func(int) { restamp() }, args...)
			})
		})
	}
	return s.c.writeWith(s.rt, run)
}

// Get opens a logical session for a LOCK/UNLOCK-bracketed section. The
// session pins reads to one load-balanced replica; a bracket with write
// intent broadcasts the whole section to every healthy replica in order.
func (c *Client) Get() (*Session, error) {
	if c.closed.Load() {
		return nil, errors.New("cluster: client closed")
	}
	if c.sh != nil {
		return &Session{c: c, subs: make([]*Session, len(c.sh.shards)), maxSub: -1}, nil
	}
	pinned := c.pickRead()
	if pinned == nil {
		return nil, ErrNoReplicas
	}
	return &Session{
		c:      c,
		pinned: pinned,
		conns:  make([]*wire.Conn, len(c.replicas)),
		broken: make([]bool, len(c.replicas)),
	}, nil
}

// Put returns a session. Pass broken=true when the bracket did not close
// cleanly: every borrowed connection is discarded, releasing any LOCK
// TABLES state server-side, exactly like discarding a single connection.
func (c *Client) Put(s *Session, broken bool) {
	if s == nil {
		return
	}
	s.end(broken)
}

// Session is one logical connection over the cluster — what the
// application borrows around a LOCK TABLES ... UNLOCK TABLES section or a
// BEGIN ... COMMIT transaction. Not safe for concurrent use, like the wire
// connection it replaces.
type Session struct {
	c      *Client
	pinned *replica
	conns  []*wire.Conn // by replica id; nil = not borrowed yet
	broken []bool       // transport-failed connections, discarded at end

	inBracket  bool
	bracketAll bool   // write-intent bracket: section broadcasts
	inTxn      bool   // open transaction (a broadcast bracket on >1 replica)
	readOnly   bool   // transaction opened with BeginReadOnly: pinned-only, no locks
	release    func() // bracket's write-order locks
	topoHeld   bool
	failed     bool

	// Query-cache bookkeeping (cache.go). writeSet accumulates the tables
	// this transaction has written — version bumps pending until COMMIT
	// (ROLLBACK discards them: an abort publishes nothing). held is the
	// write set Begin declared up front. A read referencing any table in
	// either set bypasses the cache, keeping read-your-writes on the live
	// path; outside a transaction writes publish immediately.
	writeSet map[string]bool
	held     []string

	// Sharded-coordinator state (shard.go; only when c.sh != nil — the
	// flat fields above go unused). subs holds one lazily-opened
	// sub-session per shard; declared is Begin's write set, replayed into
	// each shard-local BEGIN; allShard marks a transaction opened on every
	// shard; maxSub is the highest shard a lazy write transaction has
	// opened (the ascending-order deadlock discipline).
	subs     []*Session
	declared []string
	allShard bool
	maxSub   int
}

// conn lazily borrows this session's connection to r.
func (s *Session) conn(r *replica) (*wire.Conn, error) {
	if s.conns[r.id] != nil {
		return s.conns[r.id], nil
	}
	cn, err := r.pool.Get()
	if err != nil {
		return nil, err
	}
	s.conns[r.id] = cn
	return cn, nil
}

// Exec runs one statement on the session as SQL text.
func (s *Session) Exec(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	return s.exec(query, args, false)
}

// ExecCached runs one statement on the session over the prepared path.
func (s *Session) ExecCached(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	return s.exec(query, args, true)
}

func (s *Session) exec(query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	if s.c.sh != nil {
		return s.shExec(query, args, cached)
	}
	res, err := s.execDispatch(query, args, cached)
	// A lock-wait-timeout abort rolled the WHOLE transaction back on the
	// replica that reported it, while the others still hold theirs open.
	// The session must not be used further: statements after the abort
	// would auto-commit on the aborted replica but stay transactional on
	// the rest, and a later COMMIT would publish divergent state. Poisoning
	// the session discards every connection, rolling the stragglers back.
	if err != nil && s.inTxn && isTxnAbort(err) {
		s.failed = true
	}
	return res, err
}

// errReadOnlyTxn rejects a mutating statement inside a BeginReadOnly
// transaction before it reaches any replica — the transaction holds no
// write-order locks, so letting the write through would break the global
// write order the replicas depend on.
var errReadOnlyTxn = errors.New("cluster: write in read-only transaction")

// rejectInReadOnly fails mutating statements inside a read-only
// transaction. Reads pass; COMMIT/ROLLBACK pass (they end it); BEGIN passes
// because Begin/the engine implicitly commit the open transaction first.
func (s *Session) rejectInReadOnly(query string) error {
	if !s.readOnly {
		return nil
	}
	switch s.c.routes.of(query).kind {
	case kindRead, kindBegin, kindTxnEnd:
		return nil
	}
	return errReadOnlyTxn
}

// isTxnAbort reports whether a database-side error also aborted the
// server's transaction (the engine's deadlock wait timeout does; ordinary
// statement errors leave the transaction open). Server errors cross the
// wire as text, so the engine's sentinel is matched by message.
func isTxnAbort(err error) bool {
	return wire.IsServerError(err) &&
		strings.Contains(err.Error(), sqldb.ErrLockWaitTimeout.Error())
}

func (s *Session) execDispatch(query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	if s.failed {
		return nil, errors.New("cluster: session failed, discard it")
	}
	// One replica: the session is an ordinary borrowed connection. The
	// transaction flag is tracked — so an unmatched BEGIN still discards the
	// connection at session end instead of returning it to the pool with an
	// open transaction — along with the cache's version-publication state.
	if len(s.c.replicas) == 1 {
		if err := s.rejectInReadOnly(query); err != nil {
			return nil, err
		}
		rt := s.c.routes.of(query)
		if rt.kind == kindRead {
			// Session reads run on the session's own borrowed connection with
			// no retry, so the pre-run stamp is the attempt's stamp.
			return s.c.cachedRead(rt, query, args, s.cacheBypass(rt), func(func()) (*sqldb.Result, error) {
				return s.singleExec(query, args, cached, rt)
			})
		}
		return s.singleExec(query, args, cached, rt)
	}
	if err := s.rejectInReadOnly(query); err != nil {
		return nil, err
	}
	rt := s.c.routes.of(query)
	switch rt.kind {
	case kindRead:
		return s.c.cachedRead(rt, query, args, s.cacheBypass(rt), func(func()) (*sqldb.Result, error) {
			return s.execRead(query, args, cached)
		})
	case kindLock:
		return s.execLock(query, args, cached, rt)
	case kindUnlock:
		return s.execUnlock(query, args, cached)
	case kindBegin:
		if err := s.Begin(); err != nil {
			return nil, err
		}
		return &sqldb.Result{}, nil
	case kindTxnEnd:
		return s.execTxnEndText(query, args, cached)
	default:
		return s.execWrite(query, args, cached, rt)
	}
}

// singleExec runs one statement on a single-replica session's borrowed
// connection, tracking the transaction flags and the cache's
// version-publication bookkeeping that the routing paths handle on a
// replicated cluster.
func (s *Session) singleExec(query string, args []sqldb.Value, cached bool, rt route) (*sqldb.Result, error) {
	cn, err := s.conn(s.pinned)
	if err != nil {
		s.failed = true
		return nil, err
	}
	res, err := s.connExec(cn, query, args, cached)
	if isTransport(err) {
		s.broken[s.pinned.id] = true
		s.failed = true
		// A non-transactional write may have applied before the connection
		// died: publish conservatively. An open transaction rolls back
		// server-side as the dead connection closes, so its pending bumps
		// are discarded — the abort published nothing.
		if rt.kind == kindWrite && !s.inTxn {
			s.c.locks.bump(rt.tables)
		}
		s.discardWrites()
		return res, err
	}
	if err != nil {
		return res, err
	}
	switch rt.kind {
	case kindBegin:
		if s.inTxn {
			s.flushWrites() // BEGIN implicitly commits the open transaction
		}
		s.inTxn, s.readOnly = true, false
	case kindTxnEnd:
		if toks := tokens(query); len(toks) > 0 && toks[0] == "ROLLBACK" {
			s.discardWrites()
		} else {
			s.flushWrites()
		}
		s.inTxn, s.readOnly = false, false
	case kindWrite:
		s.notePublish(rt.tables)
	}
	return res, err
}

// execRead runs a read on the pinned replica's connection. Inside a
// broadcast bracket the pinned replica holds the same locks as the rest,
// so its answer is canonical.
func (s *Session) execRead(query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	cn, err := s.conn(s.pinned)
	if err != nil {
		s.fail(s.pinned, err)
		return nil, err
	}
	res, err := s.connExec(cn, query, args, cached)
	if isTransport(err) {
		s.fail(s.pinned, err)
		return nil, err
	}
	s.pinned.reads.Add(1)
	return res, err
}

// execLock opens a bracket. Write intent broadcasts the LOCK to every
// healthy replica and serializes the bracket's tables cluster-wide for its
// whole duration; a read-only bracket locks the pinned replica only.
//
// A LOCK TABLES inside an open bracket mirrors MySQL's implicit release of
// the previous set: the cluster-side bracket state (write-order locks,
// topo hold) is released first, and if the previous bracket had broadcast,
// the new LOCK broadcasts too — whatever its own intent — so every
// connection that holds the old set receives the statement that releases
// it.
func (s *Session) execLock(query string, args []sqldb.Value, cached bool, rt route) (*sqldb.Result, error) {
	wasAll := s.bracketAll
	if s.inBracket {
		s.closeBracket()
	}
	if !rt.writeBracket && !wasAll {
		res, err := s.execRead(query, args, cached)
		if err == nil {
			s.inBracket = true
		}
		return res, err
	}
	if rt.writeBracket {
		if err := s.c.writeGate(); err != nil {
			return nil, err
		}
	}
	s.c.topo.RLock()
	s.topoHeld = true
	if rt.writeBracket {
		s.release = s.c.locks.acquire(rt.tables)
	}
	res, err := s.broadcast(query, args, cached, false)
	if err != nil {
		s.failed = true
		return nil, err
	}
	s.inBracket, s.bracketAll = true, true
	return res, nil
}

// execUnlock closes the bracket on every replica it was opened on. Inside
// a transaction UNLOCK TABLES is a server-side no-op (no LOCK TABLES set is
// active), so the transaction's bracket state stays untouched.
func (s *Session) execUnlock(query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	var res *sqldb.Result
	var err error
	if s.bracketAll {
		res, err = s.broadcast(query, args, cached, false)
	} else {
		res, err = s.execRead(query, args, cached)
	}
	if err != nil {
		s.failed = true
		return nil, err
	}
	if !s.inTxn {
		s.closeBracket()
	}
	return res, nil
}

// Begin opens a transaction across the cluster. tables declares the tables
// the transaction intends to write: their cluster-wide write-order locks
// are taken (in sorted order) for the whole transaction, so concurrent
// transactions on disjoint tables proceed in parallel while conflicting
// ones serialize — which is what keeps every replica applying conflicting
// transactions in one global order, aborts included. With no declaration
// the transaction serializes on the catch-all key.
//
// The BEGIN frame is pipelined: it rides to each replica with the
// transaction's first statement, so opening costs no extra round trip. A
// transaction already open is committed first, as the database itself would
// on BEGIN.
func (s *Session) Begin(tables ...string) error {
	if s.c.sh != nil {
		return s.shBegin(false, tables)
	}
	if s.failed {
		return errors.New("cluster: session failed, discard it")
	}
	if s.inTxn {
		if err := s.Commit(); err != nil {
			return err
		}
	}
	ordered := normalize(tables)
	if len(ordered) == 0 {
		ordered = []string{""}
	}
	if len(s.c.replicas) == 1 {
		cn, err := s.conn(s.pinned)
		if err != nil {
			s.failed = true
			return err
		}
		// The declared write set serializes here too: the engine only
		// write-locks a table at the transaction's first write to it, so
		// without this two read-modify-write transactions could both read
		// before either writes — the lost update the old up-front
		// LOCK TABLES bracket excluded.
		s.release = s.c.locks.acquire(ordered)
		if err := cn.Begin(); err != nil {
			s.broken[s.pinned.id] = true
			s.failed = true
			s.closeBracket()
			return err
		}
		s.inTxn = true
		s.held = ordered
		return nil
	}
	if s.inBracket {
		s.closeBracket() // a LOCK bracket ends here; the server releases its set on BEGIN
	}
	// A write transaction that cannot satisfy the strict policy fails at
	// BEGIN, before any replica opens transaction state.
	if err := s.c.writeGate(); err != nil {
		return err
	}
	s.c.topo.RLock()
	s.topoHeld = true
	s.release = s.c.locks.acquire(ordered)
	opened := 0
	for _, r := range s.c.replicas {
		if s.broken[r.id] || !r.healthy.Load() {
			continue
		}
		cn, err := s.conn(r)
		if err != nil {
			s.fail(r, err)
			continue
		}
		if err := cn.Begin(); err != nil {
			s.fail(r, err)
			continue
		}
		opened++
	}
	if opened == 0 {
		s.failed = true
		s.closeBracket()
		return ErrNoReplicas
	}
	s.inTxn, s.inBracket, s.bracketAll = true, true, true
	s.held = ordered
	return nil
}

// BeginReadOnly opens a read-only transaction on the pinned replica alone.
// Because the engine serves its reads from MVCC snapshots and a read-only
// transaction writes nothing, the replication machinery has nothing to
// order: no cluster-wide write-order locks are taken, no topology hold, no
// broadcast — the transaction costs exactly what it would against a single
// unreplicated database. Writes inside it are rejected client-side before
// touching the wire. A transaction already open is committed first, as
// Begin does.
func (s *Session) BeginReadOnly() error {
	if s.c.sh != nil {
		return s.shBegin(true, nil)
	}
	if s.failed {
		return errors.New("cluster: session failed, discard it")
	}
	if s.inTxn {
		if err := s.Commit(); err != nil {
			return err
		}
	}
	if s.bracketAll {
		// A broadcast LOCK bracket holds server-side lock sets on every
		// replica; only a broadcast statement can release them all, so a
		// pinned-only transaction cannot safely follow it. Fall back to a
		// full transaction, which closes the bracket everywhere.
		return s.Begin()
	}
	if s.inBracket {
		s.closeBracket()
	}
	cn, err := s.conn(s.pinned)
	if err != nil {
		s.failed = true
		return err
	}
	if err := cn.Begin(); err != nil {
		s.fail(s.pinned, err)
		s.failed = true
		return err
	}
	s.inTxn, s.readOnly = true, true
	s.c.roTxns.Add(1)
	return nil
}

// Commit commits the open transaction on every replica it was opened on
// and releases its write-order locks. Without an open transaction it is a
// no-op, like the database's own COMMIT. On a sharded session with more
// than one participating shard this runs two-phase commit (shard.go).
func (s *Session) Commit() error {
	if s.c.sh != nil {
		return s.shCommit()
	}
	return s.endTxn((*wire.Conn).Commit, true)
}

// Rollback rolls the open transaction back everywhere. The database's undo
// logs restore each replica to its pre-transaction state, so the replicas
// stay bit-identical across the abort.
func (s *Session) Rollback() error {
	if s.c.sh != nil {
		return s.shRollback()
	}
	return s.endTxn((*wire.Conn).Rollback, false)
}

// endTxn runs op (COMMIT or ROLLBACK) on every connection participating in
// the transaction — concurrently, like the statement broadcasts; the
// bracket's write-order locks are still held until closeBracket below, so
// the commit itself stays inside the transaction's serialized window — then
// releases the bracket state.
func (s *Session) endTxn(op func(*wire.Conn) error, commit bool) error {
	if !s.inTxn {
		return nil
	}
	defer func() {
		// Version publication resolves with the transaction: a COMMIT
		// flushes the pending table bumps — even a transport-failed one,
		// which may have committed server-side before the connection died —
		// and a ROLLBACK discards them, because an abort was never visible
		// to any read and must invalidate nothing.
		if commit {
			s.flushWrites()
		} else {
			s.discardWrites()
		}
		s.inTxn = false
		s.closeBracket()
	}()
	outs := fanOut(s.c.replicas, func(r *replica) bool {
		return s.conns[r.id] != nil && !s.broken[r.id]
	}, func(r *replica) (*sqldb.Result, error) {
		return nil, op(s.conns[r.id])
	})
	var lastErr error
	done := 0
	for _, o := range outs {
		if o.ran && o.err == nil {
			done++
		}
	}
	failedTransport := false
	for i, o := range outs {
		if !o.ran || o.err == nil {
			continue
		}
		lastErr = o.err
		if isTransport(o.err) {
			failedTransport = true
			r := s.c.replicas[i]
			s.fail(r, o.err)
			if done > 0 && r.healthy.Load() {
				// The server rolled this replica's transaction back when its
				// connection died, while others committed it: the replica has
				// diverged, so eject it whatever the error class.
				s.c.eject(r)
			}
		}
	}
	if done == 0 {
		s.failed = true
		if lastErr != nil {
			return lastErr
		}
		return ErrNoReplicas
	}
	if lastErr != nil && s.c.strict {
		// Latch degraded only for a transport failure, which the loop above
		// turned into an ejection — so a Rejoin exists to clear the latch. A
		// database-side error deterministically hit every replica alike and
		// must not leave a whole healthy cluster read-only.
		if failedTransport {
			s.c.enterDegraded()
		}
		return fmt.Errorf("cluster: strict write policy: replica failed mid-transaction-end (applied on %d): %w", done, lastErr)
	}
	return nil
}

// execTxnEndText routes a COMMIT/ROLLBACK arriving as statement text
// through the same path as the Commit/Rollback API.
func (s *Session) execTxnEndText(query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	if !s.inTxn {
		// No cluster-side transaction: let the pinned replica answer the
		// (no-op) statement deterministically.
		return s.execRead(query, args, cached)
	}
	op, commit := (*wire.Conn).Commit, true
	if toks := tokens(query); len(toks) > 0 && toks[0] == "ROLLBACK" {
		op, commit = (*wire.Conn).Rollback, false
	}
	if err := s.endTxn(op, commit); err != nil {
		return nil, err
	}
	return &sqldb.Result{}, nil
}

// execWrite broadcasts a write inside (or, degenerately, outside) a
// bracket. Inside a write bracket the tables are already serialized by the
// bracket's locks; outside, the statement takes its own.
func (s *Session) execWrite(query string, args []sqldb.Value, cached bool, rt route) (*sqldb.Result, error) {
	if s.bracketAll {
		res, err := s.broadcast(query, args, cached, true)
		// Publish unless the failure was deterministic database-side: a
		// transport-failed broadcast may have applied on some replica.
		if err == nil || !wire.IsServerError(err) {
			s.notePublish(rt.tables)
		}
		return res, err
	}
	if s.inBracket {
		// Write inside a read-only bracket: the database will reject it
		// (READ-locked), so route it to the pinned replica alone and let
		// the deterministic error come back.
		return s.execRead(query, args, cached)
	}
	if err := s.c.writeGate(); err != nil {
		return nil, err
	}
	s.c.topo.RLock()
	release := s.c.locks.acquire(rt.tables)
	defer func() { release(); s.c.topo.RUnlock() }()
	res, err := s.broadcast(query, args, cached, true)
	if err == nil || !wire.IsServerError(err) {
		s.notePublish(rt.tables)
	}
	return res, err
}

// broadcast sends one statement to every participating replica over the
// session's connections — concurrently, like the pool-level fan-out; the
// caller (or the session's bracket) holds the write-order locks that keep
// conflicting broadcasts ordered. Transport failures eject the replica and
// — under the default policy — the broadcast continues; the lowest-id
// participating replica's answer is canonical.
func (s *Session) broadcast(query string, args []sqldb.Value, cached, countWrite bool) (*sqldb.Result, error) {
	var b bcast
	// Borrow connections first: session state is single-owner, so the
	// borrowing stays sequential and only the round trips parallelize.
	for _, r := range s.c.replicas {
		if s.broken[r.id] || s.conns[r.id] != nil || !r.healthy.Load() {
			continue
		}
		if _, err := s.conn(r); err != nil {
			s.fail(r, err)
			b.fail(err)
		}
	}
	outs := fanOut(s.c.replicas, func(r *replica) bool {
		return s.conns[r.id] != nil && !s.broken[r.id]
	}, func(r *replica) (*sqldb.Result, error) {
		return s.connExec(s.conns[r.id], query, args, cached)
	})
	b.collect(outs, s.c.replicas, countWrite, func(r *replica, err error, _ bool) { s.fail(r, err) })
	if countWrite && b.answered {
		// The write landed somewhere, so every replica this session could
		// not reach — a failed borrow above, a connection broken earlier in
		// the bracket, or this fan-out's failure — has missed it and
		// diverged: eject it regardless of why the connection broke (even
		// pool saturation), leaving the rejoin sync as the only way back.
		for _, r := range s.c.replicas {
			if s.broken[r.id] && r.healthy.Load() {
				s.c.eject(r)
			}
		}
	}
	s.c.noteBroadcast(outs)
	res, err := b.result(s.c)
	// A database-side error in `err` is deterministic and leaves the
	// session usable; only an unanswered or strict-failed broadcast
	// poisons it.
	if !b.answered || (b.failed && s.c.strict) {
		s.failed = true
		return nil, err
	}
	// The session must keep reading from a replica that holds the bracket.
	if !s.pinned.healthy.Load() {
		for _, r := range s.c.replicas {
			if r.healthy.Load() && s.conns[r.id] != nil && !s.broken[r.id] {
				s.pinned = r
				break
			}
		}
	}
	return res, err
}

func (s *Session) connExec(cn *wire.Conn, query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	if cached {
		return cn.ExecCached(query, args...)
	}
	return cn.Exec(query, args...)
}

// fail poisons the session's connection to r and — when err implicates
// the replica rather than this client's own saturation (see ejectable) —
// ejects r.
func (s *Session) fail(r *replica, err error) {
	s.broken[r.id] = true
	if ejectable(err) {
		s.c.eject(r)
	}
}

func (s *Session) closeBracket() {
	if s.inTxn {
		// Reached with the transaction still open only on an implicit
		// commit (a LOCK TABLES arriving inside it) or an abandoned
		// session. The server may have committed the pending writes, so
		// they are published conservatively — a spurious bump only costs
		// cache misses, never correctness.
		s.flushWrites()
	}
	s.held = nil
	if s.release != nil {
		s.release()
		s.release = nil
	}
	if s.topoHeld {
		s.c.topo.RUnlock()
		s.topoHeld = false
	}
	s.inBracket, s.bracketAll, s.inTxn, s.readOnly = false, false, false, false
}

// end returns every borrowed connection and releases bracket state. A
// session abandoned with its transaction still open discards every
// connection: each server session rolls the transaction back as its
// connection closes, so no pooled connection ever carries open transaction
// state to its next borrower.
func (s *Session) end(broken bool) {
	if s.c.sh != nil {
		s.shEnd(broken)
		return
	}
	broken = broken || s.inTxn
	s.closeBracket()
	for i, cn := range s.conns {
		if cn == nil {
			continue
		}
		s.c.replicas[i].pool.Put(cn, broken || s.failed || s.broken[i])
		s.conns[i] = nil
	}
}

// WithTx runs fn inside one database transaction: a session is borrowed, a
// transaction declaring the given write tables is opened on it, and fn's
// outcome decides the verdict — nil commits, an error (or a panic, which is
// re-raised after cleanup) rolls back, restoring every replica to its
// pre-transaction state. This is the short-transaction bracket the
// application hot paths use in place of LOCK TABLES sections, and the
// demarcation primitive the EJB container wraps business methods in.
func (c *Client) WithTx(tables []string, fn func(tx *Session) error) (err error) {
	s, err := c.Get()
	if err != nil {
		return err
	}
	broken := false
	committed := false
	defer func() {
		if r := recover(); r != nil {
			s.Rollback() // best effort; end() discards the conns regardless
			c.Put(s, true)
			panic(r)
		}
		if !committed && s.inTxn {
			if rbErr := s.Rollback(); rbErr != nil {
				broken = true
			}
		}
		c.Put(s, broken)
	}()
	if err := s.Begin(tables...); err != nil {
		broken = true
		return err
	}
	if err := fn(s); err != nil {
		return err
	}
	if err := s.Commit(); err != nil {
		broken = true
		return err
	}
	committed = true
	return nil
}

// WithReadTx runs fn inside a read-only transaction (BeginReadOnly): every
// SELECT in fn is served from an MVCC snapshot on one pinned replica, with
// no cluster-wide write-order locks and no broadcast traffic. This is the
// demarcation bracket for read-only business methods — the replication
// "correctness tax" drops out of their path entirely. fn's writes fail
// deterministically; its error (or panic, re-raised after cleanup) rolls
// the transaction back, nil commits it.
func (c *Client) WithReadTx(fn func(tx *Session) error) (err error) {
	s, err := c.Get()
	if err != nil {
		return err
	}
	broken := false
	committed := false
	defer func() {
		if r := recover(); r != nil {
			s.Rollback() // best effort; end() discards the conns regardless
			c.Put(s, true)
			panic(r)
		}
		if !committed && s.inTxn {
			if rbErr := s.Rollback(); rbErr != nil {
				broken = true
			}
		}
		c.Put(s, broken)
	}()
	if err := s.BeginReadOnly(); err != nil {
		broken = true
		return err
	}
	if err := fn(s); err != nil {
		return err
	}
	if err := s.Commit(); err != nil {
		broken = true
		return err
	}
	committed = true
	return nil
}

// Rejoin brings an ejected replica back: its stale pooled connections are
// dropped and, with sync true, a healthy replica's data is replayed onto
// it first (the replica-sync path). Rejoin blocks new broadcasts until the
// copy completes, so the joiner comes back consistent.
func (c *Client) Rejoin(id int, syncData bool) error {
	if c.sh != nil {
		// Global replica ids number shard 0's replicas first, then shard
		// 1's, and so on — the same order ReplicaStats reports.
		rest := id
		for _, in := range c.sh.shards {
			if rest < len(in.replicas) {
				return in.Rejoin(rest, syncData)
			}
			rest -= len(in.replicas)
		}
		return fmt.Errorf("cluster: no replica %d", id)
	}
	if id < 0 || id >= len(c.replicas) {
		return fmt.Errorf("cluster: no replica %d", id)
	}
	r := c.replicas[id]
	if r.healthy.Load() {
		// Nothing to bring back — but an operator calling Rejoin on an
		// already-whole cluster is an explicit recovery action, so clear a
		// stale degraded latch rather than leaving it with no exit path.
		c.exitDegradedIfWhole()
		return nil
	}
	c.topo.Lock()
	defer c.topo.Unlock()
	r.pool.Reset()
	if syncData {
		src := c.pickRead()
		if src == nil {
			return ErrNoReplicas
		}
		// Mark the joiner as mid-sync in the shared (per-DSN) registry: this
		// client's reads already skip it via the healthy flag, but OTHER
		// clients over the same backends — which never ejected it and still
		// see it healthy — must not route reads to a half-copied data set.
		c.locks.beginSync(r.addr)
		st, err := SyncAuto(src.pool, r.pool, c.syncTO)
		c.locks.endSync(r.addr, err == nil)
		if err == nil {
			if st.Delta {
				c.walDeltaSyncs.Add(1)
				c.walDeltaStmts.Add(int64(st.Stmts))
			} else {
				c.walFullSyncs.Add(1)
			}
		}
		if err != nil {
			// The replica stays cleanly ejected: healthy stays false for
			// this client, and the sync taint keeps every other client's
			// reads away from the half-copied data set until a later
			// Rejoin completes.
			return fmt.Errorf("cluster: sync replica %d from %d: %w", id, src.id, err)
		}
	}
	r.healthy.Store(true)
	c.exitDegradedIfWhole()
	return nil
}

// Stats aggregates the per-replica pools into one pool.Stats — the single
// "connections into the database tier" figure the cross-tier bottleneck
// heuristic consumes. Counters sum; latency figures take the worst replica.
func (c *Client) Stats() pool.Stats {
	if c.sh != nil {
		pools := make([]pool.Stats, len(c.sh.shards))
		for i, in := range c.sh.shards {
			pools[i] = in.Stats()
		}
		return pool.Sum("db-shards", pools)
	}
	pools := make([]pool.Stats, len(c.replicas))
	for i, r := range c.replicas {
		pools[i] = r.pool.Stats()
	}
	name := "db-cluster"
	if len(c.replicas) == 1 {
		name = "db@" + c.replicas[0].addr
	}
	return pool.Sum(name, pools)
}

// ReplicaStats reports the per-replica routing view for telemetry. On a
// sharded client the replicas of every shard are concatenated in shard
// order with globally renumbered ids (matching Rejoin's addressing) and
// each entry's Shard field set.
func (c *Client) ReplicaStats() []telemetry.Replica {
	if c.sh != nil {
		var out []telemetry.Replica
		for si, in := range c.sh.shards {
			for _, rs := range in.ReplicaStats() {
				rs.ID = len(out)
				rs.Shard = si
				out = append(out, rs)
			}
		}
		return out
	}
	out := make([]telemetry.Replica, 0, len(c.replicas))
	for _, r := range c.replicas {
		ps := r.pool.Stats()
		out = append(out, telemetry.Replica{
			ID:        r.id,
			Addr:      r.addr,
			Healthy:   r.healthy.Load(),
			Reads:     r.reads.Load(),
			Writes:    r.writes.Load(),
			Ejections: r.ejections.Load(),
			LagNanos:  r.lagNanos.Load(),
			Pool:      &ps,
		})
	}
	return out
}

// Close closes every replica pool and releases the client's slot in the
// shared write-order lock registry.
func (c *Client) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	if c.sh != nil {
		for _, in := range c.sh.shards {
			in.Close()
		}
		releaseWriteLocks(c.sh.addrs)
		return
	}
	for _, r := range c.replicas {
		r.pool.Close()
	}
	addrs := make([]string, len(c.replicas))
	for i, r := range c.replicas {
		addrs[i] = r.addr
	}
	releaseWriteLocks(addrs)
}
