package cluster

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sqldb"
)

// cacheStats pulls just the query-cache counters out of ClientStats.
func cacheStats(c *Client) (hits, misses, invalidations, bypasses int64) {
	cs := c.ClientStats()
	return cs.QueryCacheHits, cs.QueryCacheMisses, cs.QueryCacheInvalidations, cs.QueryCacheBypasses
}

func queryQty(t *testing.T, ex Execer, id int) int64 {
	t.Helper()
	res, err := ex.Exec("SELECT qty FROM items WHERE id = ?", sqldb.Int(int64(id)))
	if err != nil {
		t.Fatalf("SELECT qty id=%d: %v", id, err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("SELECT qty id=%d: %d rows", id, len(res.Rows))
	}
	return res.Rows[0][0].AsInt()
}

// TestQueryCacheHitAndInvalidate: the second identical read must be served
// from the cache; a write to the referenced table must invalidate exactly
// that entry and the next read must see the new data.
func TestQueryCacheHitAndInvalidate(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{QueryCache: 32})

	if got := queryQty(t, c, 1); got != 100 {
		t.Fatalf("qty = %d, want 100", got)
	}
	if got := queryQty(t, c, 1); got != 100 {
		t.Fatalf("qty = %d, want 100", got)
	}
	hits, misses, _, _ := cacheStats(c)
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}

	mustExec(t, c, "UPDATE items SET qty = 42 WHERE id = 1")
	if got := queryQty(t, c, 1); got != 42 {
		t.Fatalf("qty after write = %d, want 42 (stale cache hit?)", got)
	}
	hits, misses, invals, _ := cacheStats(c)
	if hits != 1 || misses != 2 || invals != 1 {
		t.Fatalf("hits=%d misses=%d invalidations=%d, want 1/2/1", hits, misses, invals)
	}

	// Distinct args are distinct entries: id=2 was never written, but its
	// entry shares the items stamp, so it too revalidates (miss), then hits.
	if got := queryQty(t, c, 2); got != 100 {
		t.Fatalf("qty id=2 = %d, want 100", got)
	}
	if got := queryQty(t, c, 2); got != 100 {
		t.Fatalf("qty id=2 = %d, want 100", got)
	}
	hits, _, _, _ = cacheStats(c)
	if hits != 2 {
		t.Fatalf("hits=%d, want 2", hits)
	}
}

// TestQueryCacheWriteOtherTableKeepsEntry: writes to an unrelated table
// must not invalidate cached reads of this one — invalidation is
// per-table, not a wholesale flush.
func TestQueryCacheWriteOtherTableKeepsEntry(t *testing.T) {
	reps := startReplicas(t, 1)
	c := newTestClient(t, reps, Config{QueryCache: 32})

	queryQty(t, c, 1) // fill
	mustExec(t, c, "INSERT INTO audit (item, delta) VALUES (?, ?)", sqldb.Int(1), sqldb.Int(-1))
	queryQty(t, c, 1) // must still hit
	hits, misses, invals, _ := cacheStats(c)
	if hits != 1 || misses != 1 || invals != 0 {
		t.Fatalf("hits=%d misses=%d invalidations=%d, want 1/1/0", hits, misses, invals)
	}
}

// TestQueryCacheAbortPublishesNothing: a rolled-back transaction must not
// invalidate cache entries or advance the page-cache content epoch —
// nothing committed, so nothing changed.
func TestQueryCacheAbortPublishesNothing(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{QueryCache: 32})

	queryQty(t, c, 1) // fill
	epoch0 := c.ContentEpoch()

	s, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("items"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE items SET qty = -999 WHERE id = 1")
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	c.Put(s, false)

	if got := c.ContentEpoch(); got != epoch0 {
		t.Fatalf("ContentEpoch advanced %d -> %d across an aborted txn", epoch0, got)
	}
	if got := queryQty(t, c, 1); got != 100 {
		t.Fatalf("qty after abort = %d, want 100", got)
	}
	hits, _, invals, _ := cacheStats(c)
	if hits != 1 || invals != 0 {
		t.Fatalf("hits=%d invalidations=%d after abort, want 1/0", hits, invals)
	}
}

// TestQueryCacheCommitAdvancesEpoch: the same transaction, committed, must
// invalidate and advance the epoch.
func TestQueryCacheCommitAdvancesEpoch(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{QueryCache: 32})

	queryQty(t, c, 1)
	epoch0 := c.ContentEpoch()
	err := c.WithTx([]string{"items"}, func(tx *Session) error {
		_, err := tx.Exec("UPDATE items SET qty = 7 WHERE id = 1")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ContentEpoch(); got <= epoch0 {
		t.Fatalf("ContentEpoch %d not advanced past %d by committed txn", got, epoch0)
	}
	if got := queryQty(t, c, 1); got != 7 {
		t.Fatalf("qty after commit = %d, want 7", got)
	}
}

// TestQueryCacheTxnBypass: inside a transaction that write-holds a table,
// reads of that table must bypass the cache (read-your-writes stays live),
// while the outside world keeps its cached view until commit.
func TestQueryCacheTxnBypass(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{QueryCache: 32})

	queryQty(t, c, 3) // fill: 100

	s, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("items"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE items SET qty = 55 WHERE id = 3")
	if got := queryQty(t, s, 3); got != 55 {
		t.Fatalf("read-your-writes inside txn = %d, want 55", got)
	}
	_, _, _, bypasses := cacheStats(c)
	if bypasses == 0 {
		t.Fatal("in-txn read of a write-held table did not bypass the cache")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Put(s, false)

	if got := queryQty(t, c, 3); got != 55 {
		t.Fatalf("qty after commit = %d, want 55", got)
	}
}

// TestQueryCacheReadOnlyTxn: reads inside a read-only cluster transaction
// hold no write locks, so they remain cacheable.
func TestQueryCacheReadOnlyTxn(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{QueryCache: 32})

	queryQty(t, c, 4) // fill
	err := c.WithReadTx(func(tx *Session) error {
		if got := queryQty(t, tx, 4); got != 100 {
			t.Fatalf("read-only txn qty = %d, want 100", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	hits, _, _, _ := cacheStats(c)
	if hits == 0 {
		t.Fatal("read inside read-only txn did not use the cache")
	}
}

// TestQueryCacheTorture is the -race stress test: concurrent cached
// readers against committing and aborting writers. Invariants checked on
// every read, through the cache:
//
//   - a session's own committed write is visible to its very next read
//     (bump-after-ack means the stale entry cannot revalidate);
//   - the qty sum of the transfer pair rows 5+6 is always 200 — a single
//     SELECT never observes a half-applied transaction;
//   - the poison value written by always-aborting transactions never
//     escapes its session (abort publishes nothing, MVCC hides it).
func TestQueryCacheTorture(t *testing.T) {
	for _, n := range []int{1, 2} {
		t.Run(fmt.Sprintf("replicas=%d", n), func(t *testing.T) {
			reps := startReplicas(t, n)
			c := newTestClient(t, reps, Config{QueryCache: 64, PoolSize: 16})
			const iters = 60

			var wg sync.WaitGroup
			fail := func(format string, args ...any) {
				t.Helper()
				t.Errorf(format, args...)
			}

			// Freshness writers: each owns one row, writes a unique name,
			// reads it straight back through the cache.
			for g := 1; g <= 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						want := fmt.Sprintf("g%d-%d", g, i)
						if _, err := c.Exec("UPDATE items SET name = ? WHERE id = ?",
							sqldb.String(want), sqldb.Int(int64(g))); err != nil {
							fail("freshness write: %v", err)
							return
						}
						res, err := c.Exec("SELECT name FROM items WHERE id = ?", sqldb.Int(int64(g)))
						if err != nil || len(res.Rows) != 1 {
							fail("freshness read: %v", err)
							return
						}
						if got := res.Rows[0][0].AsString(); got != want {
							fail("stale read: got %q after committing %q", got, want)
							return
						}
					}
				}(g)
			}

			// Transfer writer: moves qty between rows 5 and 6 inside a
			// transaction; the pair sum stays 200.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					err := c.WithTx([]string{"items"}, func(tx *Session) error {
						if _, err := tx.Exec("UPDATE items SET qty = qty - 1 WHERE id = 5"); err != nil {
							return err
						}
						_, err := tx.Exec("UPDATE items SET qty = qty + 1 WHERE id = 6")
						return err
					})
					if err != nil {
						fail("transfer txn: %v", err)
						return
					}
				}
			}()

			// Aborter: poisons row 7 inside a txn, always rolls back.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					s, err := c.Get()
					if err != nil {
						fail("aborter get: %v", err)
						return
					}
					if err := s.Begin("items"); err != nil {
						c.Put(s, true)
						fail("aborter begin: %v", err)
						return
					}
					if _, err := s.Exec("UPDATE items SET qty = -999 WHERE id = 7"); err != nil {
						fail("aborter write: %v", err)
					}
					if err := s.Rollback(); err != nil {
						fail("aborter rollback: %v", err)
					}
					c.Put(s, false)
				}
			}()

			// Readers: full-table scans through the cache, checking the
			// invariants on every result.
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters*2; i++ {
						res, err := c.Exec("SELECT id, qty FROM items")
						if err != nil {
							fail("scan: %v", err)
							return
						}
						var pair int64
						for _, row := range res.Rows {
							id, qty := row[0].AsInt(), row[1].AsInt()
							if qty < 0 {
								fail("poison escaped: id=%d qty=%d", id, qty)
								return
							}
							if id == 5 || id == 6 {
								pair += qty
							}
						}
						if pair != 200 {
							fail("transfer pair sum = %d, want 200 (torn read)", pair)
							return
						}
					}
				}()
			}
			wg.Wait()

			// The caches did real work: some hits, and the aborter's
			// rollbacks produced bypasses but no spurious invalidations
			// beyond what the committers caused.
			hits, misses, _, _ := cacheStats(c)
			if hits == 0 {
				t.Errorf("torture run produced no cache hits (misses=%d)", misses)
			}
		})
	}
}

// TestQueryCacheRestampOnRetry: when the read that fills a cache entry is
// retried (stale pooled connection, replica failover), the version stamp
// must be re-captured for the attempt that actually produced the rows. A
// stamp captured before a failed first attempt predates any write that
// commits in the retry window, so the fill would be born stale — every
// later lookup a spurious miss. The run closure below replays exactly the
// sequence the wire notify path produces: attempt 0 dies in transport, a
// write commits, attempt 1 restamps and reads.
func TestQueryCacheRestampOnRetry(t *testing.T) {
	reps := startReplicas(t, 1)
	c := newTestClient(t, reps, Config{QueryCache: 8})
	const q = "SELECT qty FROM items WHERE id = ?"
	args := []sqldb.Value{sqldb.Int(1)}
	rt := c.routes.of(q)

	res, err := c.cachedRead(rt, q, args, false, func(restamp func()) (*sqldb.Result, error) {
		// Attempt 0 failed in transport after the pre-run stamp was taken;
		// a concurrent client's write commits before the retry.
		c.locks.bump([]string{"items"})
		restamp() // attempt 1 (the wire layer fires onAttempt before each try)
		return c.poolExec(c.replicas[0], q, args, false)
	})
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("filling read: %v %v", err, res)
	}

	// The entry was filled under the retry's stamp, so it is valid: the
	// next identical read must hit, not invalidate.
	if got := queryQty(t, c, 1); got != 100 {
		t.Fatalf("qty = %d, want 100", got)
	}
	hits, _, invals, _ := cacheStats(c)
	if hits != 1 || invals != 0 {
		t.Fatalf("hits=%d invalidations=%d, want 1/0 (entry born stale: stamp not re-captured on retry)", hits, invals)
	}
}
