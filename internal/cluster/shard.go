// Horizontal sharding (DESIGN.md §11): a sharded Client partitions tables
// across N independent replication clusters ("shard groups") by a per-table
// key column, composing with everything below it — each shard is a full
// ROWA cluster (M replicas, ejection, rejoin, its own query cache), so a
// "2x3" topology is two shards of three replicas each.
//
// Routing, in decreasing order of preference:
//
//   - Single-shard: the statement provably touches rows of one shard
//     (shardkey.go extracts the key expressions; hashing them at execution
//     time agrees on one shard). It ships to that shard's client alone —
//     the scaling fast path, for writes especially: a pinned write costs
//     one shard's broadcast instead of every replica in the system.
//   - Scatter-gather: a SELECT not pinned to one shard fans out to every
//     shard and the partial results merge client-side — concatenate,
//     re-sort by the ORDER BY, re-apply DISTINCT/LIMIT/OFFSET, and combine
//     no-GROUP-BY aggregates (COUNT/SUM by summing, MIN/MAX by comparing).
//     GROUP BY and AVG over sharded tables are rejected rather than
//     silently miscomputed.
//   - Broadcast: writes to global (unsharded) tables, unpinned
//     UPDATE/DELETE on sharded tables (each shard only owns disjoint rows,
//     so applying everywhere is exact), and DDL run on every shard under a
//     shard-set-wide write-order lock, so cross-shard statements land in
//     one global order on every shard.
//
// Id assignment: a CREATE TABLE for a sharded table automatically strides
// that table's AUTO_INCREMENT (shard i of n counts i+1, i+1+n, i+1+2n, ...),
// so generated ids hash back to the shard that created the row — and a row
// keyed by another sharded table's generated id (order_line by order_id)
// colocates with its parent, because the parent's id carries its shard's
// congruence class.
//
// Transactions: a sharded Session coordinates one sub-session per
// participating shard, opened lazily as statements pin shards (in ascending
// shard order, which is what excludes cross-transaction deadlock on the
// per-shard write-order locks). COMMIT with more than one participant runs
// two-phase commit: PREPARE TRANSACTION on every participant (protocol v4,
// PROTOCOL.md §8) and only then COMMIT everywhere; any prepare failure
// aborts every shard, so no shard commits unless all can.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sqldb"
	"repro/internal/sqldb/sqlparse"
)

// ParseShardDSN splits a DSN into shard groups: shards separated by ';',
// replicas within a shard by ','. "a:1,a:2;b:1,b:2" is two shards of two
// replicas each. A DSN with no ';' is one group — an unsharded cluster.
func ParseShardDSN(dsn string) [][]string {
	var groups [][]string
	for _, g := range strings.Split(dsn, ";") {
		if addrs := ParseDSN(g); len(addrs) > 0 {
			groups = append(groups, addrs)
		}
	}
	return groups
}

// shardSet is the sharded client's routing core: the per-shard inner
// clients, the table→key map, and the memoized per-statement plans.
type shardSet struct {
	shards  []*Client
	byTable map[string]string // lower-cased table -> shard key column
	// outer serializes cross-shard broadcasts (global-table writes, DDL)
	// over the full address set, so every shard applies them in one order.
	// Single-shard statements never touch it — the owning shard's own
	// write-order locks suffice, because shards own disjoint rows.
	outer *writeLocks
	addrs []string
	plans sync.Map // query text -> *shardPlan
	rr    atomic.Uint64

	single    atomic.Int64 // statements routed to one owning shard
	scatter   atomic.Int64 // scatter-gather SELECT fan-outs
	broadcast atomic.Int64 // cross-shard broadcast writes/DDL
	txns2pc   atomic.Int64 // transactions committed via two-phase commit

	// betweenPhases, when set (tests), runs between 2PC's PREPARE and
	// COMMIT phases — the in-doubt window chaos tests kill replicas in.
	betweenPhases func()
}

// newSharded builds a sharded Client: one inner cluster client per shard
// group (each with its own pools, health tracking and query cache) behind
// a thin routing facade. The outer client's own query cache stays nil —
// pinned statements hit the owning shard's cache, and cross-shard merges
// are recomputed (their invalidation scope spans shards).
func newSharded(cfg Config, groups [][]string) *Client {
	var all []string
	for _, g := range groups {
		all = append(all, g...)
	}
	sh := &shardSet{
		byTable: make(map[string]string, len(cfg.ShardBy)),
		outer:   acquireWriteLocks(all),
		addrs:   all,
	}
	for t, col := range cfg.ShardBy {
		sh.byTable[strings.ToLower(t)] = strings.ToLower(col)
	}
	for _, g := range groups {
		sub := cfg
		sub.DSN = strings.Join(g, ",")
		sh.shards = append(sh.shards, NewWithConfig(sub))
	}
	return &Client{sh: sh, locks: sh.outer}
}

func (sh *shardSet) rrNext() int { return int(sh.rr.Add(1) % uint64(len(sh.shards))) }

// shardPlan is the memoized routing decision for one statement text: its
// kind, whether it references a sharded table, and — when the predicate
// structure pins every touched row — the shard-key expressions to hash.
type shardPlan struct {
	rt      route
	stmt    sqlparse.Statement
	sel     *sqlparse.Select // non-nil for parsed SELECTs
	insert  bool
	sharded bool            // references at least one sharded table
	exprs   []sqlparse.Expr // nil: not pinned (scatter / broadcast)
}

func (sh *shardSet) planOf(c *Client, query string) *shardPlan {
	if v, ok := sh.plans.Load(query); ok {
		return v.(*shardPlan)
	}
	p := sh.buildPlan(c, query)
	sh.plans.Store(query, p)
	return p
}

func (sh *shardSet) buildPlan(c *Client, query string) *shardPlan {
	p := &shardPlan{rt: c.routes.of(query)}
	st, err := sqlparse.Parse(query)
	if err != nil {
		// Unparsable: reads run on one shard, writes broadcast under the
		// route's (catch-all) tables — conservative, never wrong.
		return p
	}
	p.stmt = st
	var refs []sqlparse.TableRef
	switch st := st.(type) {
	case *sqlparse.Select:
		p.sel = st
		refs = append(refs, st.From)
		for _, j := range st.Joins {
			refs = append(refs, j.Table)
		}
	case *sqlparse.Insert:
		p.insert = true
		refs = append(refs, sqlparse.TableRef{Table: st.Table})
	case *sqlparse.Update:
		refs = append(refs, sqlparse.TableRef{Table: st.Table})
	case *sqlparse.Delete:
		refs = append(refs, sqlparse.TableRef{Table: st.Table})
	default:
		return p // DDL and the rest broadcast
	}
	// First referenced sharded table whose key the statement pins wins:
	// with colocated tables (order_line by order_id) any pin lands on the
	// same shard, so "first" is a tie-break, not a semantic choice.
	for _, ref := range refs {
		col, sharded := sh.byTable[strings.ToLower(ref.Table)]
		if !sharded {
			continue
		}
		p.sharded = true
		if p.exprs == nil {
			if exprs, ok := sqlparse.ShardExprs(st, ref.Table, col); ok {
				p.exprs = exprs
			}
		}
	}
	return p
}

// shardFor evaluates the plan's key expressions against the call's
// arguments. ok only when every expression resolves and all agree on one
// shard — an IN list spanning shards scatters rather than mis-routing.
func (p *shardPlan) shardFor(args []sqldb.Value, n int) (int, bool) {
	if p.exprs == nil {
		return 0, false
	}
	shard := -1
	for _, e := range p.exprs {
		v, ok := shardValue(e, args)
		if !ok {
			return 0, false
		}
		s := shardIndex(v, n)
		if shard >= 0 && s != shard {
			return 0, false
		}
		shard = s
	}
	return shard, shard >= 0
}

// shardValue resolves one constant key expression: a literal, a '?'
// parameter from args, or a negation of either.
func shardValue(e sqlparse.Expr, args []sqldb.Value) (sqldb.Value, bool) {
	switch x := e.(type) {
	case *sqlparse.IntLit:
		return sqldb.Int(x.V), true
	case *sqlparse.FloatLit:
		return sqldb.Float(x.V), true
	case *sqlparse.StringLit:
		return sqldb.String(x.V), true
	case *sqlparse.ParamExpr:
		if x.Index < 0 || x.Index >= len(args) {
			return sqldb.Null(), false
		}
		return args[x.Index], true
	case *sqlparse.NegExpr:
		v, ok := shardValue(x.E, args)
		if !ok {
			return v, false
		}
		switch v.Kind() {
		case sqldb.KindInt:
			return sqldb.Int(-v.AsInt()), true
		case sqldb.KindFloat:
			return sqldb.Float(-v.AsFloat()), true
		}
		return sqldb.Null(), false
	}
	return sqldb.Null(), false
}

// shardIndex hashes a key value to its owning shard. Integral keys map by
// congruence — shard i of n owns ids ≡ i+1 (mod n) — which is exactly the
// class a strided AUTO_INCREMENT (OFFSET i+1 STRIDE n) assigns, so
// generated ids route back to the shard that generated them. Strings hash
// by FNV-1a.
func shardIndex(v sqldb.Value, n int) int {
	switch v.Kind() {
	case sqldb.KindInt:
		return int(((v.AsInt()-1)%int64(n) + int64(n)) % int64(n))
	case sqldb.KindFloat:
		i := int64(v.AsFloat())
		return int(((i-1)%int64(n) + int64(n)) % int64(n))
	default:
		h := fnv.New32a()
		h.Write([]byte(v.AsString()))
		return int(h.Sum32() % uint32(n))
	}
}

// exec routes one pool-level statement through the shard set.
func (sh *shardSet) exec(c *Client, query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	p := sh.planOf(c, query)
	switch p.rt.kind {
	case kindLock, kindUnlock, kindBegin, kindTxnEnd:
		return nil, fmt.Errorf("cluster: %s requires a session (Get/Put)",
			strings.Fields(query)[0])
	case kindRead:
		if !p.sharded {
			// Global tables are replicated on every shard; any one answers.
			return sh.shards[sh.rrNext()].exec(query, args, cached)
		}
		if shard, ok := p.shardFor(args, len(sh.shards)); ok {
			sh.single.Add(1)
			return sh.shards[shard].exec(query, args, cached)
		}
		sh.scatter.Add(1)
		return sh.scatterRead(p, query, args, cached, nil)
	default: // writes and DDL
		if p.sharded && p.exprs != nil {
			shard, ok := p.shardFor(args, len(sh.shards))
			if !ok && p.insert {
				return nil, errInsertSpansShards
			}
			if ok {
				sh.single.Add(1)
				return sh.shards[shard].exec(query, args, cached)
			}
		}
		if p.sharded && p.insert {
			// Keyless INSERT on a sharded table: any shard may take it —
			// its strided counter assigns an id that hashes back here.
			sh.single.Add(1)
			return sh.shards[sh.rrNext()].exec(query, args, cached)
		}
		return sh.broadcastAll(query, args, cached, p)
	}
}

var errInsertSpansShards = errors.New("cluster: INSERT rows span shards (or the shard key is unresolvable); split the statement per shard")

// scatterRead fans a SELECT out to every shard and merges. subs, when
// non-nil, supplies the per-shard sub-sessions to run on (transactional
// scatter); otherwise each shard's pool path runs it.
func (sh *shardSet) scatterRead(p *shardPlan, query string, args []sqldb.Value, cached bool, subs []*Session) (*sqldb.Result, error) {
	if p.sel == nil {
		// Non-SELECT read (SHOW ...): shard-local answers are equivalent.
		return sh.shards[sh.rrNext()].exec(query, args, cached)
	}
	if len(p.sel.GroupBy) > 0 {
		return nil, errors.New("cluster: GROUP BY across shards is not supported")
	}
	q := scatterQuery(query, p.sel)
	q, extra := appendOrderKeys(q, p.sel)
	results := make([]*sqldb.Result, len(sh.shards))
	errs := make([]error, len(sh.shards))
	var wg sync.WaitGroup
	for i := range sh.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if subs != nil {
				results[i], errs[i] = subs[i].exec(q, args, cached)
			} else {
				results[i], errs[i] = sh.shards[i].exec(q, args, cached)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeScatter(p.sel, results, extra)
}

// appendOrderKeys widens the per-shard select list with ORDER BY key
// columns the statement doesn't already select ("SELECT id FROM items
// ORDER BY end_date") — the merge needs the key values to re-sort, and it
// projects the appended columns back off afterward. DISTINCT selects are
// left alone: standard SQL already requires their ORDER BY keys in the
// select list, and widening would change what "distinct" means per shard.
func appendOrderKeys(query string, sel *sqlparse.Select) (string, int) {
	if sel.Star || sel.Distinct || len(sel.OrderBy) == 0 || isAggSelect(sel) {
		return query, 0
	}
	var missing []string
	for _, o := range sel.OrderBy {
		x, ok := o.Expr.(*sqlparse.ColRefExpr)
		if !ok {
			continue // positional literals resolve; anything else won't rewrite
		}
		if selectItemIndex(sel, x) >= 0 {
			continue
		}
		col := x.Column
		if x.Table != "" {
			col = x.Table + "." + x.Column
		}
		missing = append(missing, col)
	}
	if len(missing) == 0 {
		return query, 0
	}
	i := topLevelFrom(query)
	if i < 0 {
		return query, 0
	}
	return query[:i] + ", " + strings.Join(missing, ", ") + " " + query[i:], len(missing)
}

// topLevelFrom finds the select list's terminating FROM keyword: the first
// word-boundary "FROM" outside string literals and parentheses.
func topLevelFrom(query string) int {
	up := strings.ToUpper(query)
	depth := 0
	var inStr byte
	for i := 0; i < len(up); i++ {
		c := up[i]
		switch {
		case inStr != 0:
			if c == inStr {
				inStr = 0
			}
		case c == '\'' || c == '"':
			inStr = c
		case c == '(':
			depth++
		case c == ')':
			depth--
		case depth == 0 && c == 'F' && strings.HasPrefix(up[i:], "FROM"):
			if i > 0 && isWordByte(up[i-1]) {
				continue
			}
			if i+4 < len(up) && isWordByte(up[i+4]) {
				continue
			}
			return i
		}
	}
	return -1
}

func isWordByte(c byte) bool {
	return c == '_' || ('0' <= c && c <= '9') || ('A' <= c && c <= 'Z') || ('a' <= c && c <= 'z')
}

// scatterQuery rewrites the per-shard text of a windowed scatter: OFFSET
// only means anything against the merged order, so each shard returns its
// first offset+limit rows and the merge re-applies the window globally.
// A plain LIMIT (no OFFSET) is already correct per shard: the global top-k
// is a subset of the union of per-shard top-ks.
func scatterQuery(query string, sel *sqlparse.Select) string {
	if sel.Limit < 0 || sel.Offset <= 0 {
		return query
	}
	i := strings.LastIndex(strings.ToUpper(query), "LIMIT")
	if i < 0 {
		return query
	}
	return query[:i] + fmt.Sprintf("LIMIT %d", sel.Limit+sel.Offset)
}

// mergeScatter combines per-shard partial results into the statement's
// answer: aggregate combination for no-GROUP-BY aggregates, otherwise
// concatenate, re-sort, project off the appendOrderKeys columns (the last
// `extra`), dedup (DISTINCT) and re-window (OFFSET/LIMIT).
func mergeScatter(sel *sqlparse.Select, results []*sqldb.Result, extra int) (*sqldb.Result, error) {
	if isAggSelect(sel) {
		return mergeAggs(sel, results)
	}
	out := &sqldb.Result{Columns: results[0].Columns}
	for _, r := range results {
		out.Rows = append(out.Rows, r.Rows...)
	}
	if len(sel.OrderBy) > 0 {
		cols := make([]int, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			c := orderCol(o.Expr, sel, out.Columns)
			if c < 0 {
				return nil, fmt.Errorf("cluster: cannot merge scatter ORDER BY key %d (not in the select list)", i+1)
			}
			cols[i] = c
		}
		sort.SliceStable(out.Rows, func(a, b int) bool {
			for i, c := range cols {
				cmp := sqldb.Compare(out.Rows[a][c], out.Rows[b][c])
				if cmp == 0 {
					continue
				}
				if sel.OrderBy[i].Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
	}
	if extra > 0 {
		out.Columns = out.Columns[:len(out.Columns)-extra]
		for i, r := range out.Rows {
			out.Rows[i] = r[:len(out.Columns)]
		}
	}
	if sel.Distinct {
		out.Rows = dedupRows(out.Rows)
	}
	rows := out.Rows
	if sel.Offset > 0 {
		if sel.Offset >= len(rows) {
			rows = rows[:0]
		} else {
			rows = rows[sel.Offset:]
		}
	}
	if sel.Limit >= 0 && sel.Limit < len(rows) {
		rows = rows[:sel.Limit]
	}
	out.Rows = rows
	return out, nil
}

// orderCol resolves one ORDER BY key to a result-column index: a 1-based
// positional literal, a select-item alias, a qualified match against a
// select-item column reference, or a bare result-column name.
func orderCol(e sqlparse.Expr, sel *sqlparse.Select, cols []string) int {
	switch x := e.(type) {
	case *sqlparse.IntLit:
		if x.V >= 1 && int(x.V) <= len(cols) {
			return int(x.V) - 1
		}
	case *sqlparse.ColRefExpr:
		if i := selectItemIndex(sel, x); i >= 0 {
			return i
		}
		for i, c := range cols {
			if strings.EqualFold(c, x.Column) {
				return i
			}
		}
	}
	return -1
}

// selectItemIndex resolves a column reference to a select-item index: an
// alias match, or a qualified match against a select-item column reference.
func selectItemIndex(sel *sqlparse.Select, x *sqlparse.ColRefExpr) int {
	for i, it := range sel.Items {
		if it.Alias != "" && strings.EqualFold(it.Alias, x.Column) {
			return i
		}
		if cr, ok := it.Expr.(*sqlparse.ColRefExpr); ok &&
			strings.EqualFold(cr.Column, x.Column) &&
			(x.Table == "" || strings.EqualFold(cr.Table, x.Table)) {
			return i
		}
	}
	return -1
}

// dedupRows drops duplicate rows (full-row equality) preserving order.
func dedupRows(rows []sqldb.Row) []sqldb.Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.AsString())
			b.WriteByte(0)
			b.WriteByte(byte(v.Kind()))
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// isAggSelect reports a no-GROUP-BY all-aggregate select list — the one
// aggregate shape that merges across shards (each shard returns one row).
func isAggSelect(sel *sqlparse.Select) bool {
	if sel.Star || len(sel.Items) == 0 {
		return false
	}
	for _, it := range sel.Items {
		if _, ok := it.Expr.(*sqlparse.AggExpr); !ok {
			return false
		}
	}
	return true
}

// mergeAggs combines one-row aggregate results: COUNT and SUM add, MIN and
// MAX compare. AVG cannot be recomputed from per-shard averages and is
// rejected rather than miscomputed.
func mergeAggs(sel *sqlparse.Select, results []*sqldb.Result) (*sqldb.Result, error) {
	out := &sqldb.Result{Columns: results[0].Columns, Rows: []sqldb.Row{make(sqldb.Row, len(sel.Items))}}
	for i, it := range sel.Items {
		agg := it.Expr.(*sqlparse.AggExpr)
		acc := sqldb.Null()
		for _, r := range results {
			if len(r.Rows) != 1 || i >= len(r.Rows[0]) {
				return nil, errors.New("cluster: malformed aggregate partial result")
			}
			v := r.Rows[0][i]
			if v.IsNull() {
				continue
			}
			switch agg.Func {
			case sqlparse.AggCount, sqlparse.AggSum:
				acc = addValues(acc, v)
			case sqlparse.AggMin:
				if acc.IsNull() || sqldb.Compare(v, acc) < 0 {
					acc = v
				}
			case sqlparse.AggMax:
				if acc.IsNull() || sqldb.Compare(v, acc) > 0 {
					acc = v
				}
			default:
				return nil, fmt.Errorf("cluster: %s across shards is not supported", agg.Func)
			}
		}
		if acc.IsNull() && agg.Func == sqlparse.AggCount {
			acc = sqldb.Int(0)
		}
		out.Rows[0][i] = acc
	}
	return out, nil
}

// addValues sums two non-null numeric values, promoting to float if either is.
func addValues(a, b sqldb.Value) sqldb.Value {
	if a.IsNull() {
		return b
	}
	if a.Kind() == sqldb.KindFloat || b.Kind() == sqldb.KindFloat {
		return sqldb.Float(a.AsFloat() + b.AsFloat())
	}
	return sqldb.Int(a.AsInt() + b.AsInt())
}

// broadcastAll applies a cross-shard write or DDL on every shard under the
// outer (shard-set-wide) write-order locks, so concurrent cross-shard
// writers land in one order on every shard — without the outer hold, two
// clients' writes to a global table could interleave differently per shard
// and leave the "replicated everywhere" tables diverged between shards.
// Pinned writes never pass through here: shards own disjoint rows, so the
// owning shard's inner locks are the complete serialization.
func (sh *shardSet) broadcastAll(query string, args []sqldb.Value, cached bool, p *shardPlan) (*sqldb.Result, error) {
	sh.broadcast.Add(1)
	release := sh.outer.acquire(p.rt.tables)
	defer release()
	results := make([]*sqldb.Result, len(sh.shards))
	errs := make([]error, len(sh.shards))
	var wg sync.WaitGroup
	for i := range sh.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sh.shards[i].exec(query, args, cached)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if ct, ok := p.stmt.(*sqlparse.CreateTable); ok {
		if err := sh.strideTable(ct.Name); err != nil {
			return nil, err
		}
	}
	return results[0], nil
}

// strideTable sets a freshly created sharded table's AUTO_INCREMENT stride
// so each shard's generated ids fall in its own congruence class (see
// shardIndex). Global tables keep the default dense counter — their writes
// broadcast, so every shard assigns the same ids anyway.
func (sh *shardSet) strideTable(table string) error {
	if _, ok := sh.byTable[strings.ToLower(table)]; !ok {
		return nil
	}
	for i, s := range sh.shards {
		q := fmt.Sprintf("ALTER TABLE %s AUTO_INCREMENT OFFSET %d STRIDE %d", table, i+1, len(sh.shards))
		if _, err := s.Exec(q); err != nil {
			return fmt.Errorf("cluster: stride %s on shard %d: %w", table, i, err)
		}
	}
	return nil
}

// ---- sharded sessions: per-shard sub-sessions and two-phase commit ----

var errShardOrder = errors.New("cluster: transaction touched shards out of ascending order; declare a global table at Begin to open all shards up front")

// shExec routes one session statement. Outside a transaction the session
// adds nothing over the pool path; inside one, statements run on the
// participating shards' sub-sessions.
func (s *Session) shExec(query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	if s.failed {
		return nil, errors.New("cluster: session failed, discard it")
	}
	sh := s.c.sh
	p := sh.planOf(s.c, query)
	switch p.rt.kind {
	case kindLock, kindUnlock:
		return nil, errors.New("cluster: LOCK TABLES is not supported on a sharded cluster; use transactions")
	case kindBegin:
		if err := s.Begin(); err != nil {
			return nil, err
		}
		return &sqldb.Result{}, nil
	case kindTxnEnd:
		toks := tokens(query)
		var err error
		if len(toks) > 0 && toks[0] == "ROLLBACK" {
			err = s.Rollback()
		} else {
			err = s.Commit()
		}
		if err != nil {
			return nil, err
		}
		return &sqldb.Result{}, nil
	}
	if !s.inTxn {
		return sh.exec(s.c, query, args, cached)
	}
	if err := s.rejectInReadOnly(query); err != nil {
		return nil, err
	}
	if !p.sharded {
		// Global table: in a transaction it must still run on a
		// participating sub-session (reads must see the txn's own writes;
		// writes are broadcast when the txn was opened all-shard).
		if p.rt.kind == kindRead {
			sub, err := s.anySub()
			if err != nil {
				return nil, err
			}
			return s.subExec(sub, query, args, cached)
		}
		return s.subBroadcast(p, query, args, cached)
	}
	if shard, ok := p.shardFor(args, len(sh.shards)); ok {
		sub, err := s.sub(shard)
		if err != nil {
			return nil, err
		}
		sh.single.Add(1)
		return s.subExec(sub, query, args, cached)
	}
	if p.insert {
		if p.exprs != nil {
			return nil, errInsertSpansShards
		}
		// Keyless INSERT: any participating shard's strided counter
		// assigns an id that routes back to it.
		sub, err := s.anySub()
		if err != nil {
			return nil, err
		}
		sh.single.Add(1)
		return s.subExec(sub, query, args, cached)
	}
	if p.rt.kind == kindRead {
		if err := s.allSubs(); err != nil {
			return nil, err
		}
		sh.scatter.Add(1)
		return sh.scatterRead(p, query, args, cached, s.subs)
	}
	return s.subBroadcast(p, query, args, cached)
}

// subBroadcast runs an unpinned write on every shard's sub-session.
func (s *Session) subBroadcast(p *shardPlan, query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	if err := s.allSubs(); err != nil {
		return nil, err
	}
	s.c.sh.broadcast.Add(1)
	var first *sqldb.Result
	for _, sub := range s.subs {
		res, err := s.subExec(sub, query, args, cached)
		if err != nil {
			return nil, err
		}
		if first == nil {
			first = res
		}
	}
	return first, nil
}

// subExec runs one statement on a sub-session, propagating its poisoning:
// a sub that aborted or transport-failed takes the whole coordinated
// transaction with it.
func (s *Session) subExec(sub *Session, query string, args []sqldb.Value, cached bool) (*sqldb.Result, error) {
	res, err := sub.exec(query, args, cached)
	if sub.failed {
		s.failed = true
	}
	return res, err
}

// sub returns shard i's sub-session, opening it (and, inside a
// transaction, beginning the shard-local transaction with the declared
// write set) on first touch. Write transactions may only open shards in
// ascending order — the same sorted-acquisition discipline the write-order
// locks use, excluding deadlock between concurrent cross-shard
// transactions. Read-only transactions hold no locks and open freely.
func (s *Session) sub(i int) (*Session, error) {
	sh := s.c.sh
	sub := s.subs[i]
	if sub != nil && (!s.inTxn || sub.inTxn) {
		return sub, nil
	}
	if s.inTxn && !s.readOnly && !s.allShard && i < s.maxSub {
		s.failed = true
		return nil, errShardOrder
	}
	if sub == nil {
		var err error
		sub, err = sh.shards[i].Get()
		if err != nil {
			s.failed = true
			return nil, err
		}
		s.subs[i] = sub
	}
	if s.inTxn {
		var err error
		if s.readOnly {
			err = sub.BeginReadOnly()
		} else {
			err = sub.Begin(s.declared...)
		}
		if err != nil {
			s.failed = true
			return nil, err
		}
		if i > s.maxSub {
			s.maxSub = i
		}
	}
	return sub, nil
}

// anySub returns a participating sub-session for statements any shard can
// serve: the lowest open one, or — with none open yet — shard 0, so later
// pinned statements can still open their shard in ascending order.
func (s *Session) anySub() (*Session, error) {
	for _, sub := range s.subs {
		if sub != nil && (!s.inTxn || sub.inTxn) {
			return sub, nil
		}
	}
	if s.inTxn && s.readOnly {
		return s.sub(s.c.sh.rrNext())
	}
	return s.sub(0)
}

// allSubs opens every shard's sub-session (a scatter read or cross-shard
// write inside the transaction). A write transaction can only be promoted
// to all-shard while its open set is a contiguous prefix of the shard
// order — sub() rejects filling a gap behind maxSub — so a transaction
// already pinned past a skipped shard fails deterministically instead of
// risking out-of-order lock acquisition.
func (s *Session) allSubs() error {
	for i := range s.subs {
		if _, err := s.sub(i); err != nil {
			return err
		}
	}
	if s.inTxn && !s.readOnly {
		s.allShard = true
	}
	return nil
}

// shBegin opens a coordinated transaction. A declared write set naming
// only sharded tables opens shards lazily as statements pin them (the
// single-shard fast path: one shard, no 2PC); declaring a global table —
// or declaring nothing — opens every shard up front, since the write set
// spans them all.
func (s *Session) shBegin(readOnly bool, tables []string) error {
	if s.failed {
		return errors.New("cluster: session failed, discard it")
	}
	if s.inTxn {
		if err := s.Commit(); err != nil {
			return err
		}
	}
	sh := s.c.sh
	s.declared = normalize(tables)
	s.readOnly = readOnly
	s.maxSub = -1
	s.allShard = false
	s.inTxn = true
	if readOnly {
		s.c.roTxns.Add(1)
		return nil
	}
	all := len(s.declared) == 0
	for _, t := range s.declared {
		if _, sharded := sh.byTable[t]; !sharded {
			all = true
		}
	}
	if all {
		s.allShard = true
		if err := s.allSubs(); err != nil {
			s.shAbort()
			return err
		}
	}
	return nil
}

// shAbort best-effort rolls back every open sub-transaction after a
// failed open; the session stays failed and its conns are discarded at Put.
func (s *Session) shAbort() {
	for _, sub := range s.subs {
		if sub != nil && sub.inTxn {
			sub.Rollback()
		}
	}
	s.inTxn, s.readOnly = false, false
}

// shCommit resolves the coordinated transaction. One participant (or a
// read-only transaction) commits directly — the shard's own ROWA commit is
// the whole story. More than one write participant runs two-phase commit:
// every shard's transaction is brought to the prepared state (PREPARE
// TRANSACTION, wire protocol v4) — past prepare, a shard's commit can no
// longer fail engine-side — and only when every shard has prepared do the
// COMMITs go out. A prepare failure aborts every shard: no shard commits
// unless all can, which is what keeps a multi-shard order atomic.
func (s *Session) shCommit() error {
	if !s.inTxn {
		return nil
	}
	sh := s.c.sh
	defer func() { s.inTxn, s.readOnly, s.allShard = false, false, false }()
	subs := s.openSubs()
	if len(subs) <= 1 || s.readOnly {
		var err error
		for _, sub := range subs {
			if e := sub.Commit(); e != nil && err == nil {
				err = e
			}
		}
		if err != nil {
			s.failed = true
		}
		return err
	}
	for _, sub := range subs {
		if err := sub.PrepareTxn(); err != nil {
			for _, r := range subs {
				r.Rollback()
			}
			s.failed = true
			return fmt.Errorf("cluster: 2pc prepare: %w", err)
		}
	}
	if sh.betweenPhases != nil {
		sh.betweenPhases()
	}
	sh.txns2pc.Add(1)
	var err error
	for _, sub := range subs {
		if e := sub.Commit(); e != nil {
			err = e
		}
	}
	if err != nil {
		// Every shard prepared, so the failure is transport-side on some
		// replica; that replica was ejected by its shard's commit path and
		// rejoin-sync is its way back. The transaction itself committed.
		s.failed = true
		return fmt.Errorf("cluster: 2pc commit: %w", err)
	}
	return nil
}

// shRollback aborts the coordinated transaction on every open shard.
func (s *Session) shRollback() error {
	if !s.inTxn {
		return nil
	}
	var err error
	for _, sub := range s.openSubs() {
		if e := sub.Rollback(); e != nil {
			err = e
		}
	}
	s.inTxn, s.readOnly, s.allShard = false, false, false
	return err
}

// openSubs lists the sub-sessions participating in the open transaction,
// in shard order.
func (s *Session) openSubs() []*Session {
	var out []*Session
	for _, sub := range s.subs {
		if sub != nil && sub.inTxn {
			out = append(out, sub)
		}
	}
	return out
}

// shEnd returns every sub-session to its shard.
func (s *Session) shEnd(broken bool) {
	broken = broken || s.inTxn || s.failed
	for i, sub := range s.subs {
		if sub == nil {
			continue
		}
		s.c.sh.shards[i].Put(sub, broken)
		s.subs[i] = nil
	}
	s.inTxn, s.readOnly, s.allShard = false, false, false
}

// PrepareTxn brings this (unsharded) session's open transaction to the
// prepared state on every participating replica — phase one of the
// sharded coordinator's two-phase commit. Any error means the shard could
// not promise to commit and the coordinator must abort everywhere; a
// transport failure additionally poisons that replica's connection (its
// server-side transaction rolled back with the connection).
func (s *Session) PrepareTxn() error {
	if s.c.sh != nil {
		return errors.New("cluster: PrepareTxn runs on shard sub-sessions; Commit drives it")
	}
	if !s.inTxn {
		return errors.New("cluster: PREPARE TRANSACTION outside a transaction")
	}
	outs := fanOut(s.c.replicas, func(r *replica) bool {
		return s.conns[r.id] != nil && !s.broken[r.id]
	}, func(r *replica) (*sqldb.Result, error) {
		return nil, s.conns[r.id].PrepareTxn()
	})
	var lastErr error
	prepared := 0
	for i, o := range outs {
		if !o.ran {
			continue
		}
		if o.err != nil {
			lastErr = o.err
			if isTransport(o.err) {
				s.fail(s.c.replicas[i], o.err)
			}
			continue
		}
		prepared++
	}
	if prepared == 0 && lastErr == nil {
		return ErrNoReplicas
	}
	return lastErr
}
