package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// testReplica is one backend under test: its database and wire server.
type testReplica struct {
	db   *sqldb.DB
	srv  *wire.Server
	addr string
}

// startReplicas boots n identically seeded backends with a small table.
func startReplicas(t *testing.T, n int) []*testReplica {
	t.Helper()
	reps := make([]*testReplica, n)
	for i := range reps {
		db := sqldb.New()
		sess := db.NewSession()
		ex := sqldb.SessionExecer{S: sess}
		mustExec(t, ex, `CREATE TABLE items (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(32), qty INT)`)
		mustExec(t, ex, `CREATE TABLE audit (id INT PRIMARY KEY AUTO_INCREMENT, item INT, delta INT)`)
		for j := 1; j <= 10; j++ {
			mustExec(t, ex, "INSERT INTO items (name, qty) VALUES (?, ?)",
				sqldb.String(fmt.Sprintf("item-%d", j)), sqldb.Int(100))
		}
		sess.Close()
		srv := wire.NewServer(db, nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = &testReplica{db: db, srv: srv, addr: addr.String()}
		t.Cleanup(func() { srv.Close() })
	}
	return reps
}

func mustExec(t *testing.T, ex Execer, q string, args ...sqldb.Value) {
	t.Helper()
	if _, err := ex.Exec(q, args...); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}

func dsnOf(reps []*testReplica) string {
	addrs := make([]string, len(reps))
	for i, r := range reps {
		addrs[i] = r.addr
	}
	return strings.Join(addrs, ",")
}

func newTestClient(t *testing.T, reps []*testReplica, cfg Config) *Client {
	t.Helper()
	cfg.DSN = dsnOf(reps)
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 4
	}
	c := NewWithConfig(cfg)
	t.Cleanup(c.Close)
	return c
}

// TestReadsLoadBalance: reads must land on every healthy replica, not just
// the first — the read-one half of read-one-write-all.
func TestReadsLoadBalance(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{})
	for i := 0; i < 40; i++ {
		res, err := c.ExecCached("SELECT name FROM items WHERE id = ?", sqldb.Int(int64(1+i%10)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("row count %d", len(res.Rows))
		}
	}
	for i, r := range reps {
		if n := r.srv.QueryCount(); n == 0 {
			t.Errorf("replica %d served no statements; reads did not balance", i)
		}
	}
	rs := c.ReplicaStats()
	if rs[0].Reads+rs[1].Reads != 40 {
		t.Errorf("routed reads %d+%d, want 40 total", rs[0].Reads, rs[1].Reads)
	}
	if rs[0].Writes != 0 || rs[1].Writes != 0 {
		t.Errorf("reads were counted as writes: %+v", rs)
	}
}

// TestWriteBroadcast: a write must apply on every replica, and the replicas
// must assign the same AUTO_INCREMENT ids.
func TestWriteBroadcast(t *testing.T) {
	reps := startReplicas(t, 3)
	c := newTestClient(t, reps, Config{})
	res, err := c.ExecCached("INSERT INTO items (name, qty) VALUES (?, ?)",
		sqldb.String("new"), sqldb.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.LastInsertID != 11 {
		t.Fatalf("LastInsertID %d, want 11", res.LastInsertID)
	}
	for i, r := range reps {
		res := queryReplica(t, r, "SELECT qty FROM items WHERE id = 11")
		if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 7 {
			t.Errorf("replica %d missing broadcast row: %+v", i, res.Rows)
		}
	}
}

func queryReplica(t *testing.T, r *testReplica, q string) *sqldb.Result {
	t.Helper()
	sess := r.db.NewSession()
	defer sess.Close()
	res, err := sess.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWriteOrderingUnderConcurrency hammers one row from many goroutines
// (run with -race): the per-table write-order lock must leave every replica
// with the same final state and the same row sets.
func TestWriteOrderingUnderConcurrency(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{PoolSize: 8})
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := c.ExecCached("UPDATE items SET qty = qty - 1 WHERE id = 1"); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.ExecCached("INSERT INTO audit (item, delta) VALUES (?, ?)",
					sqldb.Int(1), sqldb.Int(int64(w*rounds+i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	want := int64(100 - workers*rounds)
	for i, r := range reps {
		res := queryReplica(t, r, "SELECT qty FROM items WHERE id = 1")
		if got := res.Rows[0][0].AsInt(); got != want {
			t.Errorf("replica %d qty %d, want %d", i, got, want)
		}
		audit := queryReplica(t, r, "SELECT COUNT(*) FROM audit")
		if got := audit.Rows[0][0].AsInt(); got != int64(workers*rounds) {
			t.Errorf("replica %d audit rows %d, want %d", i, got, workers*rounds)
		}
	}
	// AUTO_INCREMENT assignment must agree row for row: the audit ids paired
	// with each delta are identical across replicas only if both replicas
	// applied the inserts in one global order.
	a := queryReplica(t, reps[0], "SELECT id, delta FROM audit ORDER BY id")
	b := queryReplica(t, reps[1], "SELECT id, delta FROM audit ORDER BY id")
	for i := range a.Rows {
		if a.Rows[i][0].AsInt() != b.Rows[i][0].AsInt() ||
			a.Rows[i][1].AsInt() != b.Rows[i][1].AsInt() {
			t.Fatalf("audit row %d diverged: %v vs %v", i, a.Rows[i], b.Rows[i])
		}
	}
}

// TestSessionBracketBroadcast drives the LOCK ... UNLOCK path the (non-
// sync) applications use: the bracketed write must reach both replicas.
func TestSessionBracketBroadcast(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{})
	s, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecCached("LOCK TABLES items WRITE, audit READ"); err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecCached("SELECT qty FROM items WHERE id = 2")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("read in bracket: %v", err)
	}
	if _, err := s.ExecCached("UPDATE items SET qty = ? WHERE id = 2", sqldb.Int(55)); err != nil {
		t.Fatal(err)
	}
	// A read-locked table rejects writes — deterministically on the one
	// replica the read is routed to.
	if _, err := s.ExecCached("INSERT INTO audit (item, delta) VALUES (1, 1)"); err == nil {
		t.Fatal("write to READ-locked table must fail")
	} else if !wire.IsServerError(err) {
		t.Fatalf("want server error, got %v", err)
	}
	if _, err := s.ExecCached("UNLOCK TABLES"); err != nil {
		t.Fatal(err)
	}
	c.Put(s, false)
	for i, r := range reps {
		res := queryReplica(t, r, "SELECT qty FROM items WHERE id = 2")
		if got := res.Rows[0][0].AsInt(); got != 55 {
			t.Errorf("replica %d qty %d, want 55", i, got)
		}
	}
}

// TestFailoverMidWorkload kills one replica under load: reads must
// continue on the survivor (after one ejection), and writes must keep
// applying on the survivor under the default policy.
func TestFailoverMidWorkload(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{})
	// Warm both replicas.
	for i := 0; i < 10; i++ {
		if _, err := c.ExecCached("SELECT name FROM items WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	reps[1].srv.Close() // the failure

	// Reads keep working; the dead replica is ejected on first contact.
	for i := 0; i < 20; i++ {
		if _, err := c.ExecCached("SELECT name FROM items WHERE id = 2"); err != nil {
			t.Fatalf("read %d after failover: %v", i, err)
		}
	}
	if h := c.Healthy(); h != 1 {
		t.Fatalf("healthy %d, want 1", h)
	}
	// Writes continue on the survivor (write-all-available).
	if _, err := c.ExecCached("UPDATE items SET qty = 1 WHERE id = 3"); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	res := queryReplica(t, reps[0], "SELECT qty FROM items WHERE id = 3")
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatal("write did not apply on survivor")
	}
	rs := c.ReplicaStats()
	if rs[1].Ejections != 1 || rs[1].Healthy {
		t.Fatalf("replica 1 not ejected: %+v", rs[1])
	}
}

// TestStrictWritePolicy: with StrictWrites, a write that loses a replica
// mid-broadcast errors (after completing on the survivors).
func TestStrictWritePolicy(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{StrictWrites: true})
	// Warm the pools so the failure happens at execution, not dial.
	if _, err := c.ExecCached("UPDATE items SET qty = 100 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	reps[1].srv.Close()
	_, err := c.ExecCached("UPDATE items SET qty = 42 WHERE id = 1")
	if err == nil {
		t.Fatal("strict policy must error when a replica fails mid-broadcast")
	}
	// The survivor applied it regardless, staying self-consistent.
	res := queryReplica(t, reps[0], "SELECT qty FROM items WHERE id = 1")
	if res.Rows[0][0].AsInt() != 42 {
		t.Fatal("survivor missing the strict-mode write")
	}
	// Reads still flow.
	if _, err := c.ExecCached("SELECT name FROM items WHERE id = 1"); err != nil {
		t.Fatalf("read after strict failure: %v", err)
	}
}

// TestReprepareOnReplica: a prepared statement must survive replica
// connection churn — fresh connections transparently re-prepare, including
// after ejection and rejoin (the re-prepare-on-replica regression test).
func TestReprepareOnReplica(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{PoolSize: 2})
	st := c.Prepare("SELECT name FROM items WHERE id = ?")
	for i := 0; i < 8; i++ {
		if _, err := st.Exec(sqldb.Int(1)); err != nil {
			t.Fatal(err)
		}
	}
	wr := c.Prepare("UPDATE items SET qty = ? WHERE id = ?")
	if _, err := wr.Exec(sqldb.Int(9), sqldb.Int(4)); err != nil {
		t.Fatal(err)
	}

	// Kill and restart replica 1 on the same address: every connection and
	// server-side statement id it held is gone.
	reps[1].srv.Close()
	if _, err := wr.Exec(sqldb.Int(10), sqldb.Int(4)); err != nil {
		t.Fatalf("write during outage (available policy): %v", err)
	}
	srv2 := wire.NewServer(reps[1].db, nil)
	if _, err := srv2.Listen(reps[1].addr); err != nil {
		t.Skipf("cannot rebind %s: %v", reps[1].addr, err)
	}
	t.Cleanup(func() { srv2.Close() })
	reps[1].srv = srv2

	if err := c.Rejoin(1, true); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if h := c.Healthy(); h != 2 {
		t.Fatalf("healthy %d after rejoin, want 2", h)
	}
	// The rejoined replica caught up on the write it missed...
	res := queryReplica(t, reps[1], "SELECT qty FROM items WHERE id = 4")
	if got := res.Rows[0][0].AsInt(); got != 10 {
		t.Fatalf("rejoined replica qty %d, want 10 (sync missed the write)", got)
	}
	// ...and both statements keep executing on both replicas: the new
	// connections re-prepare behind the scenes.
	before := reps[1].srv.QueryCount()
	for i := 0; i < 20; i++ {
		if _, err := st.Exec(sqldb.Int(2)); err != nil {
			t.Fatalf("prepared read after rejoin: %v", err)
		}
	}
	if _, err := wr.Exec(sqldb.Int(11), sqldb.Int(5)); err != nil {
		t.Fatalf("prepared write after rejoin: %v", err)
	}
	if reps[1].srv.QueryCount() == before {
		t.Fatal("rejoined replica served nothing; statements not re-prepared there")
	}
}

// TestSyncCopiesData: the replica-sync path replays tables, rows and
// AUTO_INCREMENT positions onto an empty schema.
func TestSyncCopiesData(t *testing.T) {
	reps := startReplicas(t, 1)
	src := wire.NewPool(reps[0].addr, 2)
	defer src.Close()

	dst := sqldb.New()
	sess := dst.NewSession()
	ex := sqldb.SessionExecer{S: sess}
	mustExec(t, ex, `CREATE TABLE items (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(32), qty INT)`)
	mustExec(t, ex, `CREATE TABLE audit (id INT PRIMARY KEY AUTO_INCREMENT, item INT, delta INT)`)

	tables, rows, err := Sync(src, ex)
	if err != nil {
		t.Fatal(err)
	}
	if tables != 2 || rows != 10 {
		t.Fatalf("synced %d tables / %d rows, want 2 / 10", tables, rows)
	}
	res, err := sess.Exec("SELECT COUNT(*) FROM items")
	if err != nil || res.Rows[0][0].AsInt() != 10 {
		t.Fatalf("dst items: %v %+v", err, res)
	}
	// The next insert must continue the source's AUTO_INCREMENT sequence.
	ins, err := sess.Exec("INSERT INTO items (name, qty) VALUES ('after', 1)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.LastInsertID != 11 {
		t.Fatalf("post-sync LastInsertID %d, want 11", ins.LastInsertID)
	}
	sess.Close()
}

// TestRouteAnalysis pins the routing classifier's table extraction.
func TestRouteAnalysis(t *testing.T) {
	cases := []struct {
		q      string
		kind   stmtKind
		tables string
		wb     bool
	}{
		{"SELECT * FROM items", kindRead, "", false},
		{"  select id from items where x = ?", kindRead, "", false},
		{"SHOW TABLES", kindRead, "", false},
		{"INSERT INTO orders (a, b) VALUES (?, ?)", kindWrite, "orders", false},
		{"UPDATE Items SET qty = ? WHERE id = ?", kindWrite, "items", false},
		{"DELETE FROM cart_items WHERE cart = ?", kindWrite, "cart_items", false},
		{"CREATE TABLE foo (id INT)", kindWrite, "foo", false},
		{"CREATE TABLE IF NOT EXISTS foo (id INT)", kindWrite, "foo", false},
		{"CREATE UNIQUE INDEX idx_x ON bar (col)", kindWrite, "bar", false},
		{"DROP TABLE IF EXISTS baz", kindWrite, "baz", false},
		{"LOCK TABLES a READ, b WRITE, c READ", kindLock, "b", true},
		{"LOCK TABLES a READ", kindLock, "", false},
		{"UNLOCK TABLES", kindUnlock, "", false},
	}
	for _, tc := range cases {
		r := analyze(tc.q)
		if r.kind != tc.kind {
			t.Errorf("%q kind %d, want %d", tc.q, r.kind, tc.kind)
		}
		if got := strings.Join(r.tables, ","); got != tc.tables {
			t.Errorf("%q tables %q, want %q", tc.q, got, tc.tables)
		}
		if r.writeBracket != tc.wb {
			t.Errorf("%q writeBracket %v, want %v", tc.q, r.writeBracket, tc.wb)
		}
	}
}

// TestNestedLockBracket: a second LOCK TABLES inside an open bracket
// mirrors MySQL's implicit release — the first bracket's cluster-side
// write-order locks must be released (regression: they leaked, blocking
// every later writer to the table forever).
func TestNestedLockBracket(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{})
	s, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecCached("LOCK TABLES items WRITE"); err != nil {
		t.Fatal(err)
	}
	// Nested re-lock of a different set: items' locks must be released.
	if _, err := s.ExecCached("LOCK TABLES audit WRITE"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecCached("INSERT INTO audit (item, delta) VALUES (1, 5)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecCached("UNLOCK TABLES"); err != nil {
		t.Fatal(err)
	}
	c.Put(s, false)

	// A write to items from the pool must neither block on a leaked
	// write-order lock nor on a leaked topo reader (exercised via Rejoin
	// being a topo writer — nothing is ejected, so it is a no-op, but a
	// leaked reader would have deadlocked a writer if one were pending).
	done := make(chan error, 1)
	go func() {
		_, err := c.ExecCached("UPDATE items SET qty = 3 WHERE id = 1")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write to items blocked: nested LOCK leaked its write-order lock")
	}
	for i, r := range reps {
		res := queryReplica(t, r, "SELECT COUNT(*) FROM audit")
		if got := res.Rows[0][0].AsInt(); got != 1 {
			t.Errorf("replica %d audit rows %d, want 1", i, got)
		}
	}
}

// replicaDump renders one replica's full table state (scan order included),
// for byte-identity assertions across replicas and across aborts.
func replicaDump(t *testing.T, r *testReplica) string {
	t.Helper()
	var b strings.Builder
	sess := r.db.NewSession()
	defer sess.Close()
	for _, name := range r.db.TableNames() {
		res, err := sess.Exec("SELECT * FROM " + name)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s %v\n", name, res.Rows)
	}
	return b.String()
}

// TestTxnBroadcastCommit: a committed transaction applies on every replica,
// with identical AUTO_INCREMENT assignment.
func TestTxnBroadcastCommit(t *testing.T) {
	reps := startReplicas(t, 3)
	c := newTestClient(t, reps, Config{})
	err := c.WithTx([]string{"items", "audit"}, func(tx *Session) error {
		res, err := tx.ExecCached("INSERT INTO items (name, qty) VALUES (?, ?)",
			sqldb.String("txn-item"), sqldb.Int(3))
		if err != nil {
			return err
		}
		if res.LastInsertID != 11 {
			t.Errorf("LastInsertID %d, want 11", res.LastInsertID)
		}
		// Read-your-writes on the pinned replica.
		sel, err := tx.ExecCached("SELECT qty FROM items WHERE id = 11")
		if err != nil || len(sel.Rows) != 1 || sel.Rows[0][0].AsInt() != 3 {
			t.Errorf("read-your-writes inside txn: %v %+v", err, sel)
		}
		_, err = tx.ExecCached("INSERT INTO audit (item, delta) VALUES (11, 3)")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	want := replicaDump(t, reps[0])
	for i, r := range reps[1:] {
		if got := replicaDump(t, r); got != want {
			t.Fatalf("replica %d diverged after commit:\n%s\nvs\n%s", i+1, want, got)
		}
	}
}

// TestTxnRollbackKeepsReplicasIdentical: an aborted transaction leaves all
// replicas byte-identical to the pre-transaction state.
func TestTxnRollbackKeepsReplicasIdentical(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{})
	before := replicaDump(t, reps[0])
	sentinel := fmt.Errorf("mid-transaction failure")
	err := c.WithTx([]string{"items", "audit"}, func(tx *Session) error {
		if _, err := tx.ExecCached("INSERT INTO items (name, qty) VALUES ('doomed', 1)"); err != nil {
			return err
		}
		if _, err := tx.ExecCached("UPDATE items SET qty = 0 WHERE id = 1"); err != nil {
			return err
		}
		if _, err := tx.ExecCached("DELETE FROM items WHERE id = 2"); err != nil {
			return err
		}
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("WithTx error %v, want the sentinel", err)
	}
	for i, r := range reps {
		if got := replicaDump(t, r); got != before {
			t.Fatalf("replica %d not restored after abort:\nbefore\n%s\nafter\n%s", i, before, got)
		}
	}
	// The next transaction reuses the rolled-back AUTO_INCREMENT ids on
	// every replica.
	err = c.WithTx([]string{"items"}, func(tx *Session) error {
		res, err := tx.ExecCached("INSERT INTO items (name, qty) VALUES ('kept', 1)")
		if err != nil {
			return err
		}
		if res.LastInsertID != 11 {
			t.Errorf("post-abort LastInsertID %d, want 11", res.LastInsertID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := replicaDump(t, reps[0]), replicaDump(t, reps[1]); a != b {
		t.Fatalf("replicas diverged after post-abort insert:\n%s\nvs\n%s", a, b)
	}
}

// TestTxnContentionReplicasConverge hammers one table with concurrent
// transactions, a third of which abort (run with -race): every replica must
// end bit-identical, with only committed work visible.
func TestTxnContentionReplicasConverge(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{PoolSize: 8})
	const workers, rounds = 6, 10
	abort := fmt.Errorf("abort")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := c.WithTx([]string{"items", "audit"}, func(tx *Session) error {
					if _, err := tx.ExecCached("UPDATE items SET qty = qty - 1 WHERE id = 1"); err != nil {
						return err
					}
					if _, err := tx.ExecCached("INSERT INTO audit (item, delta) VALUES (?, ?)",
						sqldb.Int(1), sqldb.Int(int64(w*rounds+i))); err != nil {
						return err
					}
					if i%3 == 0 {
						return abort // roll the whole thing back
					}
					return nil
				})
				if err != nil && err != abort {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	commits := int64(0)
	for i := 0; i < rounds; i++ {
		if i%3 != 0 {
			commits += workers
		}
	}
	res := queryReplica(t, reps[0], "SELECT qty FROM items WHERE id = 1")
	if got := res.Rows[0][0].AsInt(); got != 100-commits {
		t.Errorf("qty %d, want %d (only committed decrements)", got, 100-commits)
	}
	audit := queryReplica(t, reps[0], "SELECT COUNT(*) FROM audit")
	if got := audit.Rows[0][0].AsInt(); got != commits {
		t.Errorf("audit rows %d, want %d", got, commits)
	}
	if a, b := replicaDump(t, reps[0]), replicaDump(t, reps[1]); a != b {
		t.Fatalf("replicas diverged under contention:\n%s\nvs\n%s", a, b)
	}
}

// TestTxnSessionEndDiscardsOpenTxn: a session returned with its transaction
// still open must not leak the transaction to the pool — the connections
// are discarded and the servers roll back.
func TestTxnSessionEndDiscardsOpenTxn(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{})
	before := replicaDump(t, reps[0])
	s, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("items"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecCached("UPDATE items SET qty = 0 WHERE id = 5"); err != nil {
		t.Fatal(err)
	}
	c.Put(s, false) // abandoned mid-transaction

	deadline := time.Now().Add(2 * time.Second)
	for {
		if replicaDump(t, reps[0]) == before && replicaDump(t, reps[1]) == before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned transaction survived session end")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The pool stays usable.
	if _, err := c.ExecCached("SELECT qty FROM items WHERE id = 5"); err != nil {
		t.Fatal(err)
	}
}

// TestWithTxPanicRollsBack: a panic inside the transaction body rolls back
// and re-panics — the contract container-managed demarcation builds on.
func TestWithTxPanicRollsBack(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{})
	before := replicaDump(t, reps[0])
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate out of WithTx")
			}
		}()
		_ = c.WithTx([]string{"items"}, func(tx *Session) error {
			if _, err := tx.ExecCached("UPDATE items SET qty = -1 WHERE id = 1"); err != nil {
				return err
			}
			panic("business method exploded")
		})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if replicaDump(t, reps[0]) == before && replicaDump(t, reps[1]) == before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("panic path left transaction state:\n%s", replicaDump(t, reps[0]))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTxnReplicaFailureMidTxn: losing a replica mid-transaction must not
// stop the survivors from committing identically, and the failed replica's
// half-applied work dies with its connections.
func TestTxnReplicaFailureMidTxn(t *testing.T) {
	reps := startReplicas(t, 3)
	c := newTestClient(t, reps, Config{})
	err := c.WithTx([]string{"items"}, func(tx *Session) error {
		if _, err := tx.ExecCached("UPDATE items SET qty = 41 WHERE id = 1"); err != nil {
			return err
		}
		reps[2].srv.Close() // replica dies mid-transaction
		if _, err := tx.ExecCached("UPDATE items SET qty = 42 WHERE id = 1"); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatalf("transaction must survive a replica loss under the default policy: %v", err)
	}
	for i := 0; i < 2; i++ {
		res := queryReplica(t, reps[i], "SELECT qty FROM items WHERE id = 1")
		if got := res.Rows[0][0].AsInt(); got != 42 {
			t.Errorf("survivor %d qty %d, want 42", i, got)
		}
	}
	if a, b := replicaDump(t, reps[0]), replicaDump(t, reps[1]); a != b {
		t.Fatalf("survivors diverged:\n%s\nvs\n%s", a, b)
	}
	// The dead replica's sessions rolled back on close: its copy reverted
	// to the pre-transaction value.
	deadline := time.Now().Add(2 * time.Second)
	for {
		res := queryReplica(t, reps[2], "SELECT qty FROM items WHERE id = 1")
		if res.Rows[0][0].AsInt() == 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead replica kept half a transaction: qty %d", res.Rows[0][0].AsInt())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSingleReplicaTxnSerializesDeclaredTables is the lost-update
// regression test: on a single backend, two read-modify-write transactions
// declaring the same table must serialize end to end — the engine only
// write-locks at the first write, so the declared-set cluster lock is what
// keeps both from reading before either writes.
func TestSingleReplicaTxnSerializesDeclaredTables(t *testing.T) {
	reps := startReplicas(t, 1)
	c := newTestClient(t, reps, Config{PoolSize: 8})
	const workers, rounds = 8, 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := c.WithTx([]string{"items"}, func(tx *Session) error {
					res, err := tx.ExecCached("SELECT qty FROM items WHERE id = 1")
					if err != nil {
						return err
					}
					// Write back a value derived from the read: lost
					// updates would make the final count fall short.
					_, err = tx.ExecCached("UPDATE items SET qty = ? WHERE id = 1",
						sqldb.Int(res.Rows[0][0].AsInt()+1))
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	res := queryReplica(t, reps[0], "SELECT qty FROM items WHERE id = 1")
	want := int64(100 + workers*rounds)
	if got := res.Rows[0][0].AsInt(); got != want {
		t.Fatalf("qty %d, want %d (read-modify-write transactions lost updates)", got, want)
	}
}

// TestWriteOrderSharedAcrossClients is the replicated-application-tier
// variant of the lost-update regression: a load-balanced tier runs one
// cluster client per app backend over the same DSN, so the write-order
// locks must be shared process-wide (lockRegistry) — two CLIENTS'
// read-modify-write transactions on the same table must serialize exactly
// like two sessions of one client.
func TestWriteOrderSharedAcrossClients(t *testing.T) {
	reps := startReplicas(t, 1)
	c1 := newTestClient(t, reps, Config{PoolSize: 8})
	c2 := newTestClient(t, reps, Config{PoolSize: 8})
	const workers, rounds = 8, 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := c1
		if w%2 == 1 {
			c = c2 // half the workers on each client, like two app backends
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := c.WithTx([]string{"items"}, func(tx *Session) error {
					res, err := tx.ExecCached("SELECT qty FROM items WHERE id = 2")
					if err != nil {
						return err
					}
					_, err = tx.ExecCached("UPDATE items SET qty = ? WHERE id = 2",
						sqldb.Int(res.Rows[0][0].AsInt()+1))
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	res := queryReplica(t, reps[0], "SELECT qty FROM items WHERE id = 2")
	want := int64(100 + workers*rounds)
	if got := res.Rows[0][0].AsInt(); got != want {
		t.Fatalf("qty %d, want %d (cross-client transactions lost updates)", got, want)
	}
}

// TestLockRegistryRefcounts: closing every client over a DSN must free its
// registry slot; an open one must keep it.
func TestLockRegistryRefcounts(t *testing.T) {
	addrs := []string{"127.0.0.1:65001", "127.0.0.1:65002"}
	key := registryKey(addrs)
	a := NewWithConfig(Config{DSN: strings.Join(addrs, ",")})
	b := NewWithConfig(Config{DSN: addrs[1] + "," + addrs[0]}) // order-insensitive
	if a.locks != b.locks {
		t.Fatal("clients over the same replica set got distinct write-order locks")
	}
	a.Close()
	a.Close() // double Close must not double-release
	lockRegistry.mu.Lock()
	refs := lockRegistry.m[key].refs
	lockRegistry.mu.Unlock()
	if refs != 1 {
		t.Fatalf("refs = %d after one of two clients closed, want 1", refs)
	}
	b.Close()
	lockRegistry.mu.Lock()
	_, live := lockRegistry.m[key]
	lockRegistry.mu.Unlock()
	if live {
		t.Fatal("registry entry leaked after the last client closed")
	}
}

// TestCatchAllTxnExcludesNamedWriters: an undeclared transaction must
// conflict with declared-table writers, or replicas could apply the two
// write streams in different orders.
func TestCatchAllTxnExcludesNamedWriters(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{PoolSize: 8})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var tables []string
				if w%2 == 0 {
					tables = []string{"audit"} // declared
				} // odd workers: undeclared -> catch-all
				err := c.WithTx(tables, func(tx *Session) error {
					_, err := tx.ExecCached("INSERT INTO audit (item, delta) VALUES (?, ?)",
						sqldb.Int(int64(w)), sqldb.Int(int64(i)))
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	a := queryReplica(t, reps[0], "SELECT id, item, delta FROM audit ORDER BY id")
	b := queryReplica(t, reps[1], "SELECT id, item, delta FROM audit ORDER BY id")
	if len(a.Rows) != 40 || fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
		t.Fatalf("replicas diverged or lost rows (%d vs %d):\n%v\nvs\n%v",
			len(a.Rows), len(b.Rows), a.Rows, b.Rows)
	}
}

// TestTxnAbortErrorPoisonsSession: a lock-wait-timeout abort rolls the
// whole transaction back on the reporting replica; the session must refuse
// further statements (and discard its connections at end) instead of
// letting the caller keep executing half in and half out of a transaction.
func TestTxnAbortErrorPoisonsSession(t *testing.T) {
	reps := startReplicas(t, 1)
	reps[0].db.SetLockWaitTimeout(30 * time.Millisecond)
	c := newTestClient(t, reps, Config{})

	// A direct engine transaction holds audit's write lock.
	blocker := reps[0].db.NewSession()
	defer blocker.Close()
	if _, err := blocker.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := blocker.Exec("UPDATE audit SET delta = 0 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	s, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Put(s, false)
	if err := s.Begin("items"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecCached("UPDATE items SET qty = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	// The read against the blocked table times out: the server aborts the
	// WHOLE transaction.
	if _, err := s.ExecCached("SELECT delta FROM audit WHERE id = 1"); err == nil {
		t.Fatal("read against a write-held table must time out")
	}
	// The session is poisoned: further statements must be refused, so the
	// caller cannot commit a half-aborted transaction.
	if _, err := s.ExecCached("UPDATE items SET qty = 2 WHERE id = 1"); err == nil {
		t.Fatal("session must refuse statements after a transaction abort")
	}
	if _, err := blocker.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	// Nothing from the aborted transaction survived.
	res := queryReplica(t, reps[0], "SELECT qty FROM items WHERE id = 1")
	if got := res.Rows[0][0].AsInt(); got != 100 {
		t.Fatalf("qty %d, want 100 (aborted transaction leaked a write)", got)
	}
}
