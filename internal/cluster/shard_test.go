package cluster

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// startEmptyReplicas boots n backends with no schema: shard tests create
// tables through the sharded client so the automatic AUTO_INCREMENT
// striding applies.
func startEmptyReplicas(t *testing.T, n int) []*testReplica {
	t.Helper()
	reps := make([]*testReplica, n)
	for i := range reps {
		db := sqldb.New()
		srv := wire.NewServer(db, nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = &testReplica{db: db, srv: srv, addr: addr.String()}
		t.Cleanup(func() { srv.Close() })
	}
	return reps
}

// startShards boots nShards groups of nReplicas backends each.
func startShards(t *testing.T, nShards, nReplicas int) [][]*testReplica {
	t.Helper()
	groups := make([][]*testReplica, nShards)
	for i := range groups {
		groups[i] = startEmptyReplicas(t, nReplicas)
	}
	return groups
}

func shardDSN(groups [][]*testReplica) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = dsnOf(g)
	}
	return strings.Join(parts, ";")
}

// newShardClient builds a sharded client over the groups with the orders
// table partitioned by customer_id and creates the test schema through it.
func newShardClient(t *testing.T, groups [][]*testReplica, cfg Config) *Client {
	t.Helper()
	cfg.DSN = shardDSN(groups)
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 4
	}
	if cfg.ShardBy == nil {
		cfg.ShardBy = map[string]string{"orders": "customer_id"}
	}
	c := NewWithConfig(cfg)
	t.Cleanup(c.Close)
	mustExec(t, c, `CREATE TABLE orders (id INT PRIMARY KEY AUTO_INCREMENT, customer_id INT, total INT)`)
	mustExec(t, c, `CREATE TABLE customers (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(32))`)
	return c
}

func TestParseShardDSN(t *testing.T) {
	groups := ParseShardDSN("a:1,a:2; b:1 ,b:2;")
	if len(groups) != 2 || len(groups[0]) != 2 || groups[1][1] != "b:2" {
		t.Fatalf("groups %+v", groups)
	}
	if g := ParseShardDSN("a:1,a:2"); len(g) != 1 {
		t.Fatalf("unsharded DSN parsed as %d groups", len(g))
	}
}

// TestShardPinnedRouting: a statement whose predicate pins the shard key
// must run on the owning shard alone, and the rows must physically live
// only there.
func TestShardPinnedRouting(t *testing.T) {
	groups := startShards(t, 2, 1)
	c := newShardClient(t, groups, Config{})
	if c.Shards() != 2 || c.Replicas() != 2 {
		t.Fatalf("topology: %d shards / %d replicas", c.Shards(), c.Replicas())
	}
	for cust := 1; cust <= 8; cust++ {
		mustExec(t, c, "INSERT INTO orders (customer_id, total) VALUES (?, ?)",
			sqldb.Int(int64(cust)), sqldb.Int(int64(10*cust)))
	}
	// customer_id c hashes to shard (c-1) mod 2: odd customers on shard 0.
	for si, g := range groups {
		res := queryReplica(t, g[0], "SELECT customer_id FROM orders")
		if len(res.Rows) != 4 {
			t.Fatalf("shard %d holds %d rows, want 4", si, len(res.Rows))
		}
		for _, row := range res.Rows {
			if got := int(row[0].AsInt()-1) % 2; got != si {
				t.Errorf("customer %d on shard %d, want shard %d", row[0].AsInt(), si, got)
			}
		}
	}
	// A pinned SELECT must not touch the other shard.
	before := groups[1][0].srv.QueryCount()
	res, err := c.ExecCached("SELECT total FROM orders WHERE customer_id = ?", sqldb.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 30 {
		t.Fatalf("pinned read: %+v", res.Rows)
	}
	if groups[1][0].srv.QueryCount() != before {
		t.Error("pinned read reached the non-owning shard")
	}
	if st := c.ClientStats(); st.ShardSingle == 0 || st.Shards != 2 {
		t.Errorf("shard counters not recorded: %+v", st)
	}
}

// TestShardStridedIDs: CREATE TABLE through the sharded client strides each
// shard's AUTO_INCREMENT, so generated ids hash back to the shard that
// assigned them — the property single-shard routing of "WHERE id = ?"
// lookups on colocated child tables depends on.
func TestShardStridedIDs(t *testing.T) {
	groups := startShards(t, 2, 1)
	c := newShardClient(t, groups, Config{})
	seen := map[int]bool{}
	for cust := 1; cust <= 6; cust++ {
		res, err := c.Exec("INSERT INTO orders (customer_id, total) VALUES (?, ?)",
			sqldb.Int(int64(cust)), sqldb.Int(1))
		if err != nil {
			t.Fatal(err)
		}
		id := res.LastInsertID
		wantShard := (cust - 1) % 2
		if gotShard := int((id-1)%2+2) % 2; gotShard != wantShard {
			t.Errorf("customer %d: id %d lands in shard %d's congruence class, want %d",
				cust, id, gotShard, wantShard)
		}
		if seen[int(id)] {
			t.Errorf("id %d assigned twice across shards", id)
		}
		seen[int(id)] = true
	}
}

// TestShardScatterMerge: unpinned SELECTs fan out and merge — global
// ORDER BY / LIMIT / OFFSET re-applied client-side, aggregates combined.
func TestShardScatterMerge(t *testing.T) {
	groups := startShards(t, 2, 1)
	c := newShardClient(t, groups, Config{})
	totals := []int64{10, 60, 20, 50, 30, 40}
	for i, total := range totals {
		mustExec(t, c, "INSERT INTO orders (customer_id, total) VALUES (?, ?)",
			sqldb.Int(int64(i+1)), sqldb.Int(total))
	}
	res, err := c.Exec("SELECT customer_id, total FROM orders ORDER BY total DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("merged rows: %+v", res.Rows)
	}
	for i, want := range []int64{60, 50, 40} {
		if got := res.Rows[i][1].AsInt(); got != want {
			t.Errorf("merged order row %d: total %d, want %d", i, got, want)
		}
	}
	res, err = c.Exec("SELECT total FROM orders ORDER BY total DESC LIMIT 2 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 50 || res.Rows[1][0].AsInt() != 40 {
		t.Fatalf("offset window: %+v", res.Rows)
	}
	res, err = c.Exec("SELECT COUNT(*), SUM(total), MIN(total), MAX(total) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].AsInt() != 6 || row[1].AsInt() != 210 || row[2].AsInt() != 10 || row[3].AsInt() != 60 {
		t.Fatalf("aggregate merge: %+v", row)
	}
	// Unpinned lookup by a non-key column scatters and still finds the row.
	res, err = c.Exec("SELECT customer_id FROM orders WHERE total = ?", sqldb.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 4 {
		t.Fatalf("scatter point lookup: %+v", res.Rows)
	}
	if _, err := c.Exec("SELECT customer_id, COUNT(*) FROM orders GROUP BY customer_id"); err == nil {
		t.Error("GROUP BY scatter must be rejected, not miscomputed")
	}
	if _, err := c.Exec("SELECT AVG(total) FROM orders"); err == nil {
		t.Error("AVG scatter must be rejected, not miscomputed")
	}
	if st := c.ClientStats(); st.ShardScatter == 0 {
		t.Errorf("scatter counter not recorded: %+v", st)
	}
}

// TestShardGlobalTableBroadcast: writes to a table outside ShardBy must
// apply on every shard, so any shard can answer reads for it.
func TestShardGlobalTableBroadcast(t *testing.T) {
	groups := startShards(t, 2, 1)
	c := newShardClient(t, groups, Config{})
	mustExec(t, c, "INSERT INTO customers (name) VALUES (?)", sqldb.String("ada"))
	for si, g := range groups {
		res := queryReplica(t, g[0], "SELECT name FROM customers WHERE id = 1")
		if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "ada" {
			t.Errorf("shard %d missing global-table row: %+v", si, res.Rows)
		}
	}
	res, err := c.Exec("SELECT name FROM customers WHERE id = ?", sqldb.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("global read: %+v", res.Rows)
	}
	if st := c.ClientStats(); st.ShardBroadcast == 0 {
		t.Errorf("broadcast counter not recorded: %+v", st)
	}
}

// TestShardTxnSingleShard: a transaction that only ever pins one shard must
// stay on it — no BEGIN on the other shard, no two-phase commit.
func TestShardTxnSingleShard(t *testing.T) {
	groups := startShards(t, 2, 1)
	c := newShardClient(t, groups, Config{})
	before := groups[1][0].srv.QueryCount()
	err := c.WithTx([]string{"orders"}, func(tx *Session) error {
		if _, err := tx.Exec("INSERT INTO orders (customer_id, total) VALUES (?, ?)",
			sqldb.Int(1), sqldb.Int(5)); err != nil {
			return err
		}
		res, err := tx.Exec("SELECT total FROM orders WHERE customer_id = ?", sqldb.Int(1))
		if err != nil {
			return err
		}
		if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 5 {
			return fmt.Errorf("read-your-writes inside shard txn: %+v", res.Rows)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := groups[1][0].srv.QueryCount(); got != before {
		t.Errorf("single-shard transaction reached shard 1 (%d statements)", got-before)
	}
	if st := c.ClientStats(); st.Shard2PCTxns != 0 {
		t.Errorf("single-shard commit ran 2PC: %+v", st)
	}
}

// TestShard2PCCommit: a transaction spanning shards commits atomically via
// PREPARE TRANSACTION on every shard followed by COMMIT everywhere.
func TestShard2PCCommit(t *testing.T) {
	groups := startShards(t, 2, 1)
	c := newShardClient(t, groups, Config{})
	err := c.WithTx([]string{"orders", "customers"}, func(tx *Session) error {
		// customers is global, so the transaction opens every shard and the
		// two pinned INSERTs land on different shards.
		for cust := 1; cust <= 2; cust++ {
			if _, err := tx.Exec("INSERT INTO orders (customer_id, total) VALUES (?, ?)",
				sqldb.Int(int64(cust)), sqldb.Int(int64(100*cust))); err != nil {
				return err
			}
		}
		_, err := tx.Exec("INSERT INTO customers (name) VALUES (?)", sqldb.String("bob"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for si, g := range groups {
		res := queryReplica(t, g[0], "SELECT total FROM orders")
		if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != int64(100*(si+1)) {
			t.Errorf("shard %d after 2PC commit: %+v", si, res.Rows)
		}
		res = queryReplica(t, g[0], "SELECT name FROM customers")
		if len(res.Rows) != 1 {
			t.Errorf("shard %d missing global write from txn: %+v", si, res.Rows)
		}
	}
	if st := c.ClientStats(); st.Shard2PCTxns != 1 {
		t.Errorf("Shard2PCTxns %d, want 1", st.Shard2PCTxns)
	}
}

// TestShard2PCPrepareFailureAborts: when one shard cannot prepare, no
// shard may commit — the coordinator aborts everywhere.
func TestShard2PCPrepareFailureAborts(t *testing.T) {
	groups := startShards(t, 2, 1)
	c := newShardClient(t, groups, Config{})
	err := c.WithTx(nil, func(tx *Session) error {
		for cust := 1; cust <= 2; cust++ {
			if _, err := tx.Exec("INSERT INTO orders (customer_id, total) VALUES (?, ?)",
				sqldb.Int(int64(cust)), sqldb.Int(7)); err != nil {
				return err
			}
		}
		groups[1][0].srv.Close() // shard 1 dies before the commit point
		return nil
	})
	if err == nil {
		t.Fatal("commit succeeded with a shard unable to prepare")
	}
	res := queryReplica(t, groups[0][0], "SELECT COUNT(*) FROM orders")
	if got := res.Rows[0][0].AsInt(); got != 0 {
		t.Fatalf("shard 0 kept %d rows of an aborted cross-shard transaction", got)
	}
}

// TestShardTxnAscendingOrder: a lazy write transaction touching shards out
// of ascending order fails deterministically (the deadlock discipline)
// rather than acquiring shard locks in conflicting orders.
func TestShardTxnAscendingOrder(t *testing.T) {
	groups := startShards(t, 2, 1)
	c := newShardClient(t, groups, Config{})
	err := c.WithTx([]string{"orders"}, func(tx *Session) error {
		if _, err := tx.Exec("INSERT INTO orders (customer_id, total) VALUES (?, ?)",
			sqldb.Int(2), sqldb.Int(1)); err != nil { // shard 1 first
			return err
		}
		_, err := tx.Exec("INSERT INTO orders (customer_id, total) VALUES (?, ?)",
			sqldb.Int(1), sqldb.Int(1)) // then shard 0: descending
		return err
	})
	if err == nil {
		t.Fatal("descending shard acquisition was allowed")
	}
	if !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestShardReadOnlyTxnScatter: read-only transactions open sub-sessions
// freely (no locks, no order constraint) and scatter reads still merge.
func TestShardReadOnlyTxnScatter(t *testing.T) {
	groups := startShards(t, 2, 1)
	c := newShardClient(t, groups, Config{})
	for cust := 1; cust <= 4; cust++ {
		mustExec(t, c, "INSERT INTO orders (customer_id, total) VALUES (?, ?)",
			sqldb.Int(int64(cust)), sqldb.Int(int64(cust)))
	}
	err := c.WithReadTx(func(tx *Session) error {
		res, err := tx.Exec("SELECT SUM(total) FROM orders")
		if err != nil {
			return err
		}
		if got := res.Rows[0][0].AsInt(); got != 10 {
			return fmt.Errorf("scatter SUM in read txn: %d, want 10", got)
		}
		if _, err := tx.Exec("INSERT INTO orders (customer_id, total) VALUES (1, 1)"); err == nil {
			return fmt.Errorf("write allowed in read-only sharded txn")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardInsertSpanningShardsRejected: one INSERT whose VALUES rows hash
// to different shards cannot be routed and must fail loudly.
func TestShardInsertSpanningShardsRejected(t *testing.T) {
	groups := startShards(t, 2, 1)
	c := newShardClient(t, groups, Config{})
	_, err := c.Exec("INSERT INTO orders (customer_id, total) VALUES (1, 1), (2, 2)")
	if err == nil {
		t.Fatal("multi-shard INSERT was routed")
	}
}

// TestShardMid2PCReplicaKillRejoin is the sharded chaos case the PR's
// acceptance names: a replica dies inside the 2PC in-doubt window (between
// PREPARE and COMMIT), the transaction still commits on the surviving
// replicas, and after heal + rejoin every shard's replicas hold identical
// rows AND identical AUTO_INCREMENT counters (offset/stride included), so
// post-recovery id assignment cannot diverge.
func TestShardMid2PCReplicaKillRejoin(t *testing.T) {
	groups := startShards(t, 2, 2)
	c := newShardClient(t, groups, Config{})
	victim := groups[0][1] // shard 0, replica 1 -> global replica id 1
	c.sh.betweenPhases = func() { victim.srv.Close() }
	err := c.WithTx([]string{"orders", "customers"}, func(tx *Session) error {
		for cust := 1; cust <= 2; cust++ {
			if _, err := tx.Exec("INSERT INTO orders (customer_id, total) VALUES (?, ?)",
				sqldb.Int(int64(cust)), sqldb.Int(int64(cust))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("2PC commit with mid-window replica death: %v", err)
	}
	c.sh.betweenPhases = nil
	if h := c.Healthy(); h != 3 {
		t.Fatalf("healthy %d after kill, want 3", h)
	}
	// Heal: rebind the victim on its old address and rejoin with sync.
	srv2 := wire.NewServer(victim.db, nil)
	if _, err := srv2.Listen(victim.addr); err != nil {
		t.Skipf("cannot rebind %s: %v", victim.addr, err)
	}
	t.Cleanup(func() { srv2.Close() })
	victim.srv = srv2
	if err := c.Rejoin(1, true); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if h := c.Healthy(); h != 4 {
		t.Fatalf("healthy %d after rejoin, want 4", h)
	}
	for si, g := range groups {
		want := dumpReplica(t, g[0])
		for ri := 1; ri < len(g); ri++ {
			if got := dumpReplica(t, g[ri]); got != want {
				t.Errorf("shard %d replica %d diverged after rejoin:\n%s\nwant:\n%s", si, ri, got, want)
			}
		}
	}
	// The strided counters survived the sync: the next write through the
	// cluster assigns the same id on both of shard 0's replicas.
	mustExec(t, c, "INSERT INTO orders (customer_id, total) VALUES (?, ?)", sqldb.Int(1), sqldb.Int(9))
	a := queryReplica(t, groups[0][0], "SELECT MAX(id) FROM orders").Rows[0][0].AsInt()
	b := queryReplica(t, groups[0][1], "SELECT MAX(id) FROM orders").Rows[0][0].AsInt()
	if a != b {
		t.Fatalf("post-rejoin id assignment diverged: %d vs %d", a, b)
	}
}

// dumpReplica renders a replica's full logical state — rows of every table
// plus the id-assignment counters — for byte-equality comparison.
func dumpReplica(t *testing.T, r *testReplica) string {
	t.Helper()
	var b strings.Builder
	for _, q := range []string{
		"SHOW TABLE STATUS",
		"SELECT * FROM orders ORDER BY id",
		"SELECT * FROM customers ORDER BY id",
	} {
		res := queryReplica(t, r, q)
		for _, row := range res.Rows {
			for _, v := range row {
				b.WriteString(v.AsString())
				b.WriteByte('|')
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
