package cluster

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sqldb/sqlparse"
)

// stmtKind classifies a statement for routing: reads go to one replica,
// writes broadcast to all, LOCK/UNLOCK open and close a bracketed section,
// BEGIN opens a transaction and COMMIT/ROLLBACK close it.
type stmtKind int

const (
	kindRead stmtKind = iota
	kindWrite
	kindLock
	kindUnlock
	kindBegin
	kindTxnEnd
)

// route is the routing decision for one query text: its kind, and for
// writes and write-intent LOCK TABLES the tables whose cluster-wide write
// order must be serialized.
type route struct {
	kind stmtKind
	// tables lists the write-ordered tables (lower-cased, sorted, deduped).
	// Empty for reads; for an unparsable write it holds the catch-all "".
	tables []string
	// readTables lists the tables a SELECT references (FROM plus JOINs,
	// lower-cased, sorted) — the set a cached result for this statement is
	// validated against. nil for non-SELECT reads and for statements the
	// parser rejects, which makes them uncacheable (see cache.go).
	readTables []string
	// writeBracket marks a LOCK TABLES set containing at least one WRITE
	// intent: the whole bracketed section must broadcast.
	writeBracket bool
}

// routes memoizes analyze per query text. The workloads repeat a small
// fixed statement set, so this is a one-time cost per distinct text.
type routes struct{ m sync.Map }

func (rs *routes) of(query string) route {
	if v, ok := rs.m.Load(query); ok {
		return v.(route)
	}
	r := analyze(query)
	rs.m.Store(query, r)
	return r
}

// analyze classifies a statement from its leading tokens — the same
// first-keyword dispatch the SQL parser uses, without paying for a full
// parse on the routing hot path.
func analyze(query string) route {
	toks := tokens(query)
	if len(toks) == 0 {
		return route{kind: kindRead}
	}
	switch toks[0] {
	case "SELECT":
		return route{kind: kindRead, readTables: selectTables(query)}
	case "SHOW":
		return route{kind: kindRead}
	case "UNLOCK":
		return route{kind: kindUnlock}
	case "LOCK":
		return analyzeLock(toks)
	case "BEGIN", "START":
		return route{kind: kindBegin}
	case "COMMIT", "ROLLBACK":
		return route{kind: kindTxnEnd}
	case "INSERT": // INSERT INTO <t> ...
		return writeRoute(tokenAfter(toks, "INTO"))
	case "UPDATE": // UPDATE <t> SET ...
		return writeRoute(tokenAt(toks, 1))
	case "DELETE": // DELETE FROM <t> ...
		return writeRoute(tokenAfter(toks, "FROM"))
	case "CREATE": // CREATE TABLE [IF NOT EXISTS] <t> | CREATE [UNIQUE] INDEX <n> ON <t>
		if contains(toks, "INDEX") {
			return writeRoute(tokenAfter(toks, "ON"))
		}
		return writeRoute(lastToken(skipNoise(toks)))
	case "DROP": // DROP TABLE [IF EXISTS] <t>
		return writeRoute(lastToken(toks))
	default:
		// Unknown statement: assume a write serialized on the catch-all
		// table key, so replicas still apply it in one order.
		return writeRoute("")
	}
}

// selectTables extracts the table set a SELECT references via the real SQL
// parser — routing's first-token dispatch cannot see past the header, but
// the query cache must know every table whose change invalidates the
// result. The dialect has no subqueries, so FROM plus the JOIN list is the
// complete reference set. A parse failure returns nil: the statement stays
// routable (it is still a read) but uncacheable. The cost is paid once per
// distinct statement text (routes memoizes).
func selectTables(query string) []string {
	st, err := sqlparse.Parse(query)
	if err != nil {
		return nil
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok || sel.From.Table == "" {
		return nil
	}
	tables := make([]string, 0, 1+len(sel.Joins))
	tables = append(tables, sel.From.Table)
	for _, j := range sel.Joins {
		tables = append(tables, j.Table.Table)
	}
	return normalize(tables)
}

// analyzeLock parses "LOCK TABLES a READ, b WRITE, ...": the write-intent
// tables are the ones needing cluster-wide ordering.
func analyzeLock(toks []string) route {
	r := route{kind: kindLock}
	var name string
	for _, t := range toks[1:] {
		switch t {
		case "TABLES":
		case "READ":
			name = ""
		case "WRITE":
			if name != "" {
				r.tables = append(r.tables, name)
			}
			r.writeBracket = true
			name = ""
		default:
			name = t
		}
	}
	r.tables = normalize(r.tables)
	return r
}

func writeRoute(table string) route {
	return route{kind: kindWrite, tables: normalize([]string{table})}
}

// tokens splits the statement head into upper-cased words, stripping commas
// and parentheses; 16 tokens cover every header shape above.
func tokens(query string) []string {
	var out []string
	field := func(s string) {
		s = strings.Trim(s, ",()")
		if s != "" {
			out = append(out, strings.ToUpper(s))
		}
	}
	start := -1
	for i := 0; i < len(query) && len(out) < 16; i++ {
		c := query[i]
		if c == ' ' || c == '\t' || c == '\n' || c == ',' || c == '(' {
			if start >= 0 {
				field(query[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 && len(out) < 16 {
		field(query[start:])
	}
	return out
}

func tokenAfter(toks []string, word string) string {
	for i, t := range toks {
		if t == word && i+1 < len(toks) {
			return toks[i+1]
		}
	}
	return ""
}

func tokenAt(toks []string, i int) string {
	if i < len(toks) {
		return toks[i]
	}
	return ""
}

func lastToken(toks []string) string {
	if len(toks) == 0 {
		return ""
	}
	return toks[len(toks)-1]
}

// skipNoise drops the IF NOT EXISTS decoration so CREATE TABLE's name is
// the last remaining header token.
func skipNoise(toks []string) []string {
	out := toks[:0:0]
	for _, t := range toks {
		switch t {
		case "IF", "NOT", "EXISTS":
		default:
			out = append(out, t)
		}
		if len(out) >= 3 { // CREATE TABLE <t>
			break
		}
	}
	return out
}

func contains(toks []string, word string) bool {
	for _, t := range toks {
		if t == word {
			return true
		}
	}
	return false
}

// normalize lower-cases, sorts and dedupes a table list (the acquisition
// order of the write locks, mirroring LockManager's deadlock discipline).
func normalize(tables []string) []string {
	out := make([]string, 0, len(tables))
	for _, t := range tables {
		out = append(out, strings.ToLower(t))
	}
	sort.Strings(out)
	j := 0
	for i, t := range out {
		if i == 0 || t != out[j-1] {
			out[j] = t
			j++
		}
	}
	return out[:j]
}

// writeLocks serializes the cluster-wide write order per table: every
// broadcast acquires its tables' locks (in sorted order) before touching
// the first replica, so all replicas apply conflicting writes in one global
// order — the property that keeps AUTO_INCREMENT assignment and row state
// identical across backends.
//
// The catch-all key "" (a statement whose table is unknown, or a
// transaction declaring no write set) must conflict with every named
// writer, not just with other catch-all holders: it takes the global lock
// exclusively, while named sets share it. Without that, an undeclared
// transaction's writes could interleave differently with a named writer on
// different replicas.
type writeLocks struct {
	mu     sync.Mutex
	m      map[string]*sync.Mutex
	global sync.RWMutex

	// Mid-rejoin tracker. Rejoin marks the joining replica's address while
	// its data copy runs; read routing in every client sharing this
	// writeLocks instance (same DSN — including clients that never ejected
	// the replica themselves) skips the address, because a replica mid-sync
	// holds a half-copied data set. syncCount is the lock-free fast path for
	// the overwhelmingly common no-sync-running case.
	syncCount atomic.Int32
	syncMu    sync.Mutex
	syncAddrs map[string]int
	// tainted marks addresses whose last sync FAILED mid-copy (deadline
	// expiry over a stalled peer, typically): the replica holds a
	// half-copied data set no read may touch, so the mark outlives the
	// sync itself and only a later successful sync clears it.
	tainted map[string]bool

	// Commit-time table-version mirror (cache.go). Every cluster client
	// sharing this registry — the same per-DSN scope as the write-order
	// locks — bumps a written table's counter at the moment the write is
	// known committed server-side, so any client's cached query results
	// validate against the whole process's write traffic. wild is the
	// catch-all version for writes whose table set is unknown (every cache
	// entry validates against it too); epoch advances on every publication
	// and is the page cache's cross-tier content epoch (Client.ContentEpoch).
	versions sync.Map // table name -> *atomic.Uint64
	wild     atomic.Uint64
	epoch    atomic.Uint64
}

func newWriteLocks() *writeLocks {
	return &writeLocks{m: make(map[string]*sync.Mutex), syncAddrs: make(map[string]int), tainted: make(map[string]bool)}
}

// beginSync marks addr as mid-rejoin; reads must not route there until the
// matching endSync.
func (w *writeLocks) beginSync(addr string) {
	w.syncMu.Lock()
	w.syncAddrs[addr]++
	w.syncMu.Unlock()
	w.syncCount.Add(1)
}

// endSync clears a beginSync mark. ok reports whether the copy completed:
// a failed sync taints the address — syncing() keeps returning true, so
// every client sharing the DSN keeps routing reads away from the
// half-copied data set — until a later sync succeeds.
func (w *writeLocks) endSync(addr string, ok bool) {
	w.syncMu.Lock()
	if w.syncAddrs[addr]--; w.syncAddrs[addr] <= 0 {
		delete(w.syncAddrs, addr)
	}
	// Ordering matters for syncing()'s lock-free fast path: a fresh taint
	// inherits this sync's syncCount contribution (no decrement at all)
	// rather than decrementing and re-incrementing, so the counter never
	// transiently hits zero while the half-copied replica still needs
	// reads routed away from it.
	if !ok {
		if w.tainted[addr] {
			w.syncCount.Add(-1)
		} else {
			w.tainted[addr] = true
		}
	} else {
		if w.tainted[addr] {
			delete(w.tainted, addr)
			w.syncCount.Add(-1)
		}
		w.syncCount.Add(-1)
	}
	w.syncMu.Unlock()
}

// syncing reports whether addr is currently mid-rejoin, or tainted by a
// failed rejoin whose half-copied data set was never overwritten.
func (w *writeLocks) syncing(addr string) bool {
	if w.syncCount.Load() == 0 {
		return false
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.syncAddrs[addr] > 0 || w.tainted[addr]
}

// lockRegistry shares one writeLocks instance per database — keyed by the
// client's replica address set — across every cluster client in the
// process. A replicated application tier runs one client per backend
// (internal/lb spreads containers, each with its own client over the same
// DSN); write ordering must span them, or two backends' read-modify-write
// transactions could both read before either writes — the lost update the
// per-client locks already exclude within one backend. This is the
// C-JDBC-controller property reduced to one process; entries are
// refcounted so a closed lab releases its registry slot.
var lockRegistry = struct {
	mu sync.Mutex
	m  map[string]*sharedLocks
}{m: make(map[string]*sharedLocks)}

type sharedLocks struct {
	locks *writeLocks
	refs  int
}

// registryKey canonicalizes a replica address set. Order is ignored: two
// clients listing the same backends must conflict on the same tables even
// if misconfigured with different replica orders.
func registryKey(addrs []string) string {
	return strings.Join(normalize(addrs), ",")
}

// acquireWriteLocks returns the shared writeLocks for the address set,
// creating it on first use.
func acquireWriteLocks(addrs []string) *writeLocks {
	key := registryKey(addrs)
	lockRegistry.mu.Lock()
	defer lockRegistry.mu.Unlock()
	e, ok := lockRegistry.m[key]
	if !ok {
		e = &sharedLocks{locks: newWriteLocks()}
		lockRegistry.m[key] = e
	}
	e.refs++
	return e.locks
}

// releaseWriteLocks drops one reference, freeing the entry at zero.
func releaseWriteLocks(addrs []string) {
	key := registryKey(addrs)
	lockRegistry.mu.Lock()
	defer lockRegistry.mu.Unlock()
	if e, ok := lockRegistry.m[key]; ok {
		if e.refs--; e.refs <= 0 {
			delete(lockRegistry.m, key)
		}
	}
}

func (w *writeLocks) lockFor(table string) *sync.Mutex {
	w.mu.Lock()
	defer w.mu.Unlock()
	l, ok := w.m[table]
	if !ok {
		l = &sync.Mutex{}
		w.m[table] = l
	}
	return l
}

// acquire locks the (sorted, deduped) table set and returns an idempotent
// release. A set containing the catch-all "" excludes all writers.
func (w *writeLocks) acquire(tables []string) (release func()) {
	exclusive := false
	for _, t := range tables {
		if t == "" {
			exclusive = true
		}
	}
	if exclusive {
		w.global.Lock()
	} else {
		w.global.RLock()
	}
	held := make([]*sync.Mutex, 0, len(tables))
	for _, t := range tables {
		if t == "" {
			continue // covered by the exclusive global hold
		}
		l := w.lockFor(t)
		l.Lock()
		held = append(held, l)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for i := len(held) - 1; i >= 0; i-- {
				held[i].Unlock()
			}
			if exclusive {
				w.global.Unlock()
			} else {
				w.global.RUnlock()
			}
		})
	}
}
