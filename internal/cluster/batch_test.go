package cluster

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/sqldb"
)

// TestBatchedBroadcastSurvivorsIdentical hammers concurrent writes through
// the batched (fan-out) broadcast path and kills one replica mid-run: the
// survivors must finish bit-identical — same rows, same AUTO_INCREMENT
// assignments — because the write-order locks are held across the whole
// concurrent fan-out, not per replica.
func TestBatchedBroadcastSurvivorsIdentical(t *testing.T) {
	reps := startReplicas(t, 3)
	c := newTestClient(t, reps, Config{PoolSize: 8})
	const workers, rounds = 6, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if w == 0 && i == rounds/2 {
					reps[2].srv.Close() // mid-batch kill
				}
				if _, err := c.ExecCached("INSERT INTO audit (item, delta) VALUES (?, ?)",
					sqldb.Int(int64(w)), sqldb.Int(int64(i))); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.ExecCached("UPDATE items SET qty = qty + 1 WHERE id = ?",
					sqldb.Int(int64(1+i%10))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if h := c.Healthy(); h != 2 {
		t.Fatalf("healthy %d, want 2 after mid-run kill", h)
	}
	for _, q := range []string{
		"SELECT id, item, delta FROM audit ORDER BY id",
		"SELECT id, qty FROM items ORDER BY id",
	} {
		a := queryReplica(t, reps[0], q)
		b := queryReplica(t, reps[1], q)
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row counts diverged %d vs %d", q, len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j].AsInt() != b.Rows[i][j].AsInt() {
					t.Fatalf("%s: row %d diverged: %v vs %v", q, i, a.Rows[i], b.Rows[i])
				}
			}
		}
	}
	cs := c.ClientStats()
	if cs.Broadcasts == 0 || cs.BroadcastAcks <= cs.Broadcasts {
		t.Errorf("fan-out counters implausible: %+v (want acks > broadcasts with >1 replica)", cs)
	}
}

// TestReadsSkipSyncingReplica pins the rejoin-window routing rule: while a
// replica's data copy is in flight (marked in the per-DSN shared registry
// by Rejoin), NO client over that DSN may route reads to it — including
// clients that never ejected it and still consider it healthy.
func TestReadsSkipSyncingReplica(t *testing.T) {
	reps := startReplicas(t, 2)
	a := newTestClient(t, reps, Config{})
	b := newTestClient(t, reps, Config{}) // shares the DSN's lock registry

	// Simulate client a's Rejoin holding the sync window open.
	a.locks.beginSync(reps[1].addr)
	for i := 0; i < 30; i++ {
		if _, err := b.ExecCached("SELECT name FROM items WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	rs := b.ReplicaStats()
	if rs[1].Reads != 0 {
		t.Fatalf("%d reads routed to the mid-sync replica, want 0", rs[1].Reads)
	}
	if rs[0].Reads != 30 {
		t.Fatalf("survivor served %d reads, want 30", rs[0].Reads)
	}

	a.locks.endSync(reps[1].addr, true)
	for i := 0; i < 30; i++ {
		if _, err := b.ExecCached("SELECT name FROM items WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	if rs = b.ReplicaStats(); rs[1].Reads == 0 {
		t.Fatal("replica still shunned after sync completed")
	}
}

// TestReadOnlyTxnSkipsWriteOrderLocks: a BeginReadOnly transaction takes no
// cluster-wide write-order locks — a catch-all writer (which excludes every
// named writer) must proceed while the read-only transaction is open. The
// transaction's own writes are rejected client-side before touching any
// replica.
func TestReadOnlyTxnSkipsWriteOrderLocks(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{})
	err := c.WithReadTx(func(tx *Session) error {
		res, err := tx.ExecCached("SELECT qty FROM items WHERE id = 1")
		if err != nil {
			return err
		}
		if len(res.Rows) != 1 {
			t.Fatalf("read in RO txn: %d rows", len(res.Rows))
		}
		// If the read-only transaction held any write-order lock, this
		// catch-all-conflicting write from the pool would deadlock here.
		if _, err := c.ExecCached("UPDATE items SET qty = 1 WHERE id = 5"); err != nil {
			t.Fatalf("concurrent write blocked by read-only txn: %v", err)
		}
		// Writes inside the transaction are rejected without reaching a
		// replica.
		if _, err := tx.ExecCached("UPDATE items SET qty = 2 WHERE id = 6"); !errors.Is(err, errReadOnlyTxn) {
			t.Fatalf("write in RO txn: err %v, want errReadOnlyTxn", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ClientStats().ReadOnlyTxns; got != 1 {
		t.Fatalf("ReadOnlyTxns %d, want 1", got)
	}
	// The rejected write never reached any replica: id=6 keeps its seed qty.
	for i, r := range reps {
		res := queryReplica(t, r, "SELECT qty FROM items WHERE id = 6")
		if got := res.Rows[0][0].AsInt(); got != 100 {
			t.Errorf("replica %d: rejected write leaked, qty %d", i, got)
		}
	}
	// And the concurrent pool write reached both.
	for i, r := range reps {
		res := queryReplica(t, r, "SELECT qty FROM items WHERE id = 5")
		if got := res.Rows[0][0].AsInt(); got != 1 {
			t.Errorf("replica %d: concurrent write missing, qty %d", i, got)
		}
	}
}

// TestReadOnlyTxnSingleReplica: the write rejection also guards the
// single-replica fast path, where statements otherwise skip routing
// classification entirely.
func TestReadOnlyTxnSingleReplica(t *testing.T) {
	reps := startReplicas(t, 1)
	c := newTestClient(t, reps, Config{})
	s, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Put(s, false)
	if err := s.BeginReadOnly(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecCached("SELECT qty FROM items WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecCached("DELETE FROM items WHERE id = 1"); !errors.Is(err, errReadOnlyTxn) {
		t.Fatalf("err %v, want errReadOnlyTxn", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// After COMMIT the session writes normally again.
	if _, err := s.ExecCached("UPDATE items SET qty = 3 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
}
