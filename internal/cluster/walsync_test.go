package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// startWALReplicas boots n identically seeded backends whose databases are
// durability-attached (populate first, then AttachWAL — the production boot
// order, so the seed data lands in the initial checkpoint, and every write
// broadcast afterwards is logged at identical LSNs on every replica).
func startWALReplicas(t *testing.T, n int) []*testReplica {
	t.Helper()
	reps := make([]*testReplica, n)
	for i := range reps {
		db := sqldb.New()
		sess := db.NewSession()
		ex := sqldb.SessionExecer{S: sess}
		mustExec(t, ex, `CREATE TABLE items (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(32), qty INT)`)
		for j := 1; j <= 5; j++ {
			mustExec(t, ex, "INSERT INTO items (name, qty) VALUES (?, ?)",
				sqldb.String(fmt.Sprintf("item-%d", j)), sqldb.Int(100))
		}
		sess.Close()
		if _, err := db.AttachWAL(sqldb.WALOptions{
			Dir: t.TempDir(), FlushInterval: 200 * time.Microsecond, CheckpointBytes: -1,
		}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.CloseWAL() })
		srv := wire.NewServer(db, nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = &testReplica{db: db, srv: srv, addr: addr.String()}
		t.Cleanup(func() { srv.Close() })
	}
	return reps
}

// ejectAndRestart takes replica i's server down, runs missed (writes the
// replica will miss), and restarts a server over the same database on the
// same address. Skips the test if the address cannot be rebound.
func ejectAndRestart(t *testing.T, reps []*testReplica, i int, missed func()) {
	t.Helper()
	reps[i].srv.Close()
	missed()
	srv := wire.NewServer(reps[i].db, nil)
	if _, err := srv.Listen(reps[i].addr); err != nil {
		t.Skipf("cannot rebind %s: %v", reps[i].addr, err)
	}
	t.Cleanup(func() { srv.Close() })
	reps[i].srv = srv
}

// TestRejoinWALDelta: a briefly-down replica rejoins via the WAL delta
// path — only the statements it missed ship, not a full table copy — and
// ends byte-identical to the survivor.
func TestRejoinWALDelta(t *testing.T) {
	reps := startWALReplicas(t, 2)
	c := newTestClient(t, reps, Config{})
	if _, err := c.ExecCached("UPDATE items SET qty = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	ejectAndRestart(t, reps, 1, func() {
		for k := 0; k < 10; k++ {
			if _, err := c.ExecCached("INSERT INTO items (name, qty) VALUES (?, ?)",
				sqldb.String(fmt.Sprintf("missed-%d", k)), sqldb.Int(int64(k))); err != nil {
				t.Fatalf("write during outage: %v", err)
			}
		}
	})
	srcBytes := reps[0].db.WALStats().Bytes

	if err := c.Rejoin(1, true); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	st := c.ClientStats()
	if st.WALDeltaSyncs != 1 || st.WALFullSyncs != 0 {
		t.Fatalf("rejoin took the wrong path: delta=%d full=%d", st.WALDeltaSyncs, st.WALFullSyncs)
	}
	if st.WALDeltaStmts < 10 {
		t.Fatalf("delta shipped %d statements, want >= 10 (the missed inserts)", st.WALDeltaStmts)
	}
	if got, want := replicaDump(t, reps[1]), replicaDump(t, reps[0]); got != want {
		t.Fatalf("replica diverged after delta rejoin:\n got: %s\nwant: %s", got, want)
	}
	// The joiner replayed the delta through its own engine, so its log grew
	// in step with the source's — LSN-identical histories, ready for the
	// next delta — rather than being bulk-overwritten.
	if a, b := reps[0].db.WALStats(), reps[1].db.WALStats(); a.LastLSN != b.LastLSN {
		t.Fatalf("log heads diverged after delta rejoin: src %d joiner %d", a.LastLSN, b.LastLSN)
	}
	if reps[0].db.WALStats().Bytes != srcBytes {
		t.Fatal("delta rejoin appended to the source's log")
	}

	// The cluster keeps working and replicating after the rejoin.
	if _, err := c.ExecCached("UPDATE items SET qty = 2 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if got, want := replicaDump(t, reps[1]), replicaDump(t, reps[0]); got != want {
		t.Fatal("replicas diverged on the first write after delta rejoin")
	}
}

// TestRejoinWALDeltaFallsBackAfterRotation: when the source checkpointed
// (rotating the log) past the joiner's position while it was down, the
// delta is gone and Rejoin must fall back to the full copy — and still
// converge.
func TestRejoinWALDeltaFallsBackAfterRotation(t *testing.T) {
	reps := startWALReplicas(t, 2)
	c := newTestClient(t, reps, Config{})

	ejectAndRestart(t, reps, 1, func() {
		if _, err := c.ExecCached("INSERT INTO items (name, qty) VALUES ('missed', 1)"); err != nil {
			t.Fatalf("write during outage: %v", err)
		}
		// The source rotates its log past the joiner's head.
		if err := reps[0].db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	})

	if err := c.Rejoin(1, true); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	st := c.ClientStats()
	if st.WALFullSyncs != 1 || st.WALDeltaSyncs != 0 {
		t.Fatalf("rejoin took the wrong path: delta=%d full=%d", st.WALDeltaSyncs, st.WALFullSyncs)
	}
	if got, want := replicaDump(t, reps[1]), replicaDump(t, reps[0]); got != want {
		t.Fatalf("replica diverged after fallback rejoin:\n got: %s\nwant: %s", got, want)
	}
}

// TestRejoinWALDeltaRefusesDivergedJoiner: a joiner whose history is NOT a
// prefix of the source's (it applied a write the source never saw) must
// not be delta-synced — the chain handshake detects the divergence and the
// full copy restores consistency.
func TestRejoinWALDeltaRefusesDivergedJoiner(t *testing.T) {
	reps := startWALReplicas(t, 2)
	c := newTestClient(t, reps, Config{})

	ejectAndRestart(t, reps, 1, func() {
		// The source moves on…
		if _, err := c.ExecCached("INSERT INTO items (name, qty) VALUES ('src-only', 1)"); err != nil {
			t.Fatal(err)
		}
		// …and the downed replica takes a rogue local write at the same LSN.
		sess := reps[1].db.NewSession()
		if _, err := sess.Exec("INSERT INTO items (name, qty) VALUES ('rogue', 9)"); err != nil {
			t.Fatal(err)
		}
		sess.Close()
	})

	if err := c.Rejoin(1, true); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if st := c.ClientStats(); st.WALDeltaSyncs != 0 || st.WALFullSyncs != 1 {
		t.Fatalf("diverged joiner must full-copy: delta=%d full=%d", st.WALDeltaSyncs, st.WALFullSyncs)
	}
	if got, want := replicaDump(t, reps[1]), replicaDump(t, reps[0]); got != want {
		t.Fatalf("replica diverged after divergence fallback:\n got: %s\nwant: %s", got, want)
	}
}
