package cluster

import (
	"encoding/base64"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/sqldb"
)

// Execer is the minimal statement surface the sync path needs — satisfied
// by a pooled wire client, a single wire connection, an in-process
// sqldb.SessionExecer, and the cluster Client itself.
type Execer interface {
	Exec(query string, args ...sqldb.Value) (*sqldb.Result, error)
}

// syncBatch bounds rows per INSERT during a replica sync.
const syncBatch = 64

// walShipBatch bounds statements per SHOW WAL RECORDS page during a delta
// sync, and walShipMaxRounds bounds the pages — a joiner that cannot catch
// up within the cap (the source is outrunning it) falls back to a full
// copy rather than chasing the log forever.
const (
	walShipBatch     = 256
	walShipMaxRounds = 1024
)

// ErrSyncTimeout is returned by SyncWithin when the copy outlives its
// deadline. The destination holds a half-copied data set; Rejoin reacts by
// leaving the replica cleanly ejected (and marked mid-sync for every
// client sharing the DSN) rather than promoting it.
var ErrSyncTimeout = errors.New("cluster: sync deadline exceeded")

// Sync replays src's data onto dst, table by table: SHOW TABLE STATUS to
// enumerate the catalog, SELECT * to read each table, DELETE FROM plus
// batched INSERTs to rewrite it, and ALTER TABLE ... AUTO_INCREMENT to copy
// the source's id-assignment state exactly. dst must already have the
// schema (a fresh dbserver creates it before syncing; a rejoining replica
// kept its own). Row data alone cannot carry the counters: a strided shard
// counter (offset/stride) or a counter advanced past a deleted row would
// diverge on the next insert, so the status row's next/offset/stride are
// replayed verbatim. It returns the tables and rows copied.
func Sync(src, dst Execer) (tables, rows int, err error) {
	return SyncWithin(src, dst, 0)
}

// SyncWithin is Sync bounded by a wall-clock budget (0: unbounded). The
// deadline is checked between tables and between row batches — the units
// of work whose individual round trips the transport deadlines already
// bound — so expiry surfaces as ErrSyncTimeout within one round trip
// rather than hanging for the whole copy of a large data set.
func SyncWithin(src, dst Execer, budget time.Duration) (tables, rows int, err error) {
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	cat, err := src.Exec("SHOW TABLE STATUS")
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: sync: catalog: %w", err)
	}
	for _, row := range cat.Rows {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return tables, rows, ErrSyncTimeout
		}
		table := row[0].AsString()
		n, err := syncTable(src, dst, table, deadline)
		if err != nil {
			return tables, rows, fmt.Errorf("cluster: sync %s: %w", table, err)
		}
		// Columns: table, rows, auto_increment, ai_offset, ai_stride.
		if err := syncAutoInc(dst, table, row[2].AsInt(), row[3].AsInt(), row[4].AsInt()); err != nil {
			return tables, rows, fmt.Errorf("cluster: sync %s: counters: %w", table, err)
		}
		tables++
		rows += n
	}
	return tables, rows, nil
}

// syncAutoInc replays one table's id-assignment state onto dst. OFFSET and
// STRIDE are included only when set on the source — ALTER treats zero as
// "leave alone", and an unstrided source must not disturb defaults.
func syncAutoInc(dst Execer, table string, next, offset, stride int64) error {
	q := fmt.Sprintf("ALTER TABLE %s AUTO_INCREMENT", table)
	if offset > 0 {
		q += fmt.Sprintf(" OFFSET %d", offset)
	}
	if stride > 0 {
		q += fmt.Sprintf(" STRIDE %d", stride)
	}
	q += fmt.Sprintf(" NEXT %d", next)
	_, err := dst.Exec(q)
	return err
}

// SyncStats describes which path a SyncAuto took and how much it shipped.
type SyncStats struct {
	// Delta is true when the WAL log-shipping fast path caught the joiner
	// up; Stmts counts the statements it replayed. False means the full
	// table copy ran: Tables/Rows count what it rewrote.
	Delta  bool
	Stmts  int
	Tables int
	Rows   int
}

// SyncAuto catches dst up to src, preferring the WAL delta path: when both
// sides have write-ahead logs and dst's log head (last LSN + chain hash)
// matches src's chain at that same LSN — proving dst's state is a strict
// prefix of src's history — only the statements dst missed are shipped
// (SHOW WAL RECORDS) and replayed, instead of rewriting every table. Any
// mismatch, unavailability (dst's position rotated out of src's retained
// log), or mid-ship divergence falls back to the full SyncWithin copy.
func SyncAuto(src, dst Execer, budget time.Duration) (SyncStats, error) {
	if st, err := syncWALDelta(src, dst, budget); err == nil {
		return st, nil
	} else if errors.Is(err, ErrSyncTimeout) {
		// Out of budget: a full copy would only take longer.
		return st, err
	}
	tables, rows, err := SyncWithin(src, dst, budget)
	return SyncStats{Tables: tables, Rows: rows}, err
}

// errNoDelta marks conditions where the delta path does not apply and the
// full copy should run; it never escapes SyncAuto.
var errNoDelta = errors.New("cluster: wal delta sync not applicable")

// walHead reads an Execer's WAL position: attached, last LSN, chain hash.
func walHead(e Execer) (attached bool, last, chain int64, err error) {
	res, err := e.Exec("SHOW WAL STATUS")
	if err != nil || len(res.Rows) == 0 {
		return false, 0, 0, fmt.Errorf("%w: status: %v", errNoDelta, err)
	}
	row := res.Rows[0]
	return row[0].AsInt() == 1, row[1].AsInt(), row[3].AsInt(), nil
}

// chainMatches asks src for its chain hash at lsn and compares it with
// want. False covers both divergence and unavailability (lsn below src's
// retained horizon or past its head).
func chainMatches(src Execer, lsn, want int64) bool {
	res, err := src.Exec(fmt.Sprintf("SHOW WAL CHAIN %d", lsn))
	if err != nil || len(res.Rows) == 0 {
		return false
	}
	return res.Rows[0][2].AsInt() == 1 && res.Rows[0][1].AsInt() == want
}

func syncWALDelta(src, dst Execer, budget time.Duration) (SyncStats, error) {
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	attached, last, chain, err := walHead(dst)
	if err != nil {
		return SyncStats{}, err
	}
	if !attached {
		return SyncStats{}, fmt.Errorf("%w: joiner has no wal", errNoDelta)
	}
	if !chainMatches(src, last, chain) {
		return SyncStats{}, fmt.Errorf("%w: joiner head (lsn %d) not a prefix of source history", errNoDelta, last)
	}
	st := SyncStats{Delta: true}
	for round := 0; round < walShipMaxRounds; round++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return st, ErrSyncTimeout
		}
		recs, err := src.Exec(fmt.Sprintf("SHOW WAL RECORDS SINCE %d LIMIT %d", last, walShipBatch))
		if err != nil {
			return st, fmt.Errorf("cluster: wal delta: records since %d: %w", last, err)
		}
		if len(recs.Rows) == 0 {
			// Caught up. The final handshake proves the replay left dst's
			// chain a prefix of src's history (per-statement errors were
			// ignored above — originally-failing statements are part of the
			// log — so the chain is the arbiter of convergence).
			_, dLast, dChain, err := walHead(dst)
			if err != nil {
				return st, err
			}
			if !chainMatches(src, dLast, dChain) {
				return st, fmt.Errorf("cluster: wal delta: chains diverged after replay at lsn %d", dLast)
			}
			return st, nil
		}
		for _, row := range recs.Rows {
			raw, err := base64.StdEncoding.DecodeString(row[2].AsString())
			if err != nil {
				return st, fmt.Errorf("cluster: wal delta: bad args at lsn %d: %w", row[0].AsInt(), err)
			}
			args, err := sqldb.DecodeWALValues(raw)
			if err != nil {
				return st, fmt.Errorf("cluster: wal delta: bad args at lsn %d: %w", row[0].AsInt(), err)
			}
			dst.Exec(row[1].AsString(), args...)
			st.Stmts++
			last = row[0].AsInt()
		}
	}
	return st, fmt.Errorf("cluster: wal delta: joiner still behind after %d rounds", walShipMaxRounds)
}

func syncTable(src, dst Execer, table string, deadline time.Time) (int, error) {
	data, err := src.Exec("SELECT * FROM " + table)
	if err != nil {
		return 0, err
	}
	if _, err := dst.Exec("DELETE FROM " + table); err != nil {
		return 0, err
	}
	if len(data.Rows) == 0 {
		return 0, nil
	}
	cols := strings.Join(data.Columns, ", ")
	one := "(" + strings.TrimSuffix(strings.Repeat("?, ", len(data.Columns)), ", ") + ")"
	for off := 0; off < len(data.Rows); off += syncBatch {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return 0, ErrSyncTimeout
		}
		end := off + syncBatch
		if end > len(data.Rows) {
			end = len(data.Rows)
		}
		batch := data.Rows[off:end]
		placeholders := strings.TrimSuffix(strings.Repeat(one+", ", len(batch)), ", ")
		args := make([]sqldb.Value, 0, len(batch)*len(data.Columns))
		for _, r := range batch {
			args = append(args, r...)
		}
		q := fmt.Sprintf("INSERT INTO %s (%s) VALUES %s", table, cols, placeholders)
		if _, err := dst.Exec(q, args...); err != nil {
			return 0, err
		}
	}
	return len(data.Rows), nil
}
