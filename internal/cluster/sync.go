package cluster

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/sqldb"
)

// Execer is the minimal statement surface the sync path needs — satisfied
// by a pooled wire client, a single wire connection, an in-process
// sqldb.SessionExecer, and the cluster Client itself.
type Execer interface {
	Exec(query string, args ...sqldb.Value) (*sqldb.Result, error)
}

// syncBatch bounds rows per INSERT during a replica sync.
const syncBatch = 64

// ErrSyncTimeout is returned by SyncWithin when the copy outlives its
// deadline. The destination holds a half-copied data set; Rejoin reacts by
// leaving the replica cleanly ejected (and marked mid-sync for every
// client sharing the DSN) rather than promoting it.
var ErrSyncTimeout = errors.New("cluster: sync deadline exceeded")

// Sync replays src's data onto dst, table by table: SHOW TABLE STATUS to
// enumerate the catalog, SELECT * to read each table, DELETE FROM plus
// batched INSERTs to rewrite it, and ALTER TABLE ... AUTO_INCREMENT to copy
// the source's id-assignment state exactly. dst must already have the
// schema (a fresh dbserver creates it before syncing; a rejoining replica
// kept its own). Row data alone cannot carry the counters: a strided shard
// counter (offset/stride) or a counter advanced past a deleted row would
// diverge on the next insert, so the status row's next/offset/stride are
// replayed verbatim. It returns the tables and rows copied.
func Sync(src, dst Execer) (tables, rows int, err error) {
	return SyncWithin(src, dst, 0)
}

// SyncWithin is Sync bounded by a wall-clock budget (0: unbounded). The
// deadline is checked between tables and between row batches — the units
// of work whose individual round trips the transport deadlines already
// bound — so expiry surfaces as ErrSyncTimeout within one round trip
// rather than hanging for the whole copy of a large data set.
func SyncWithin(src, dst Execer, budget time.Duration) (tables, rows int, err error) {
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	cat, err := src.Exec("SHOW TABLE STATUS")
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: sync: catalog: %w", err)
	}
	for _, row := range cat.Rows {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return tables, rows, ErrSyncTimeout
		}
		table := row[0].AsString()
		n, err := syncTable(src, dst, table, deadline)
		if err != nil {
			return tables, rows, fmt.Errorf("cluster: sync %s: %w", table, err)
		}
		// Columns: table, rows, auto_increment, ai_offset, ai_stride.
		if err := syncAutoInc(dst, table, row[2].AsInt(), row[3].AsInt(), row[4].AsInt()); err != nil {
			return tables, rows, fmt.Errorf("cluster: sync %s: counters: %w", table, err)
		}
		tables++
		rows += n
	}
	return tables, rows, nil
}

// syncAutoInc replays one table's id-assignment state onto dst. OFFSET and
// STRIDE are included only when set on the source — ALTER treats zero as
// "leave alone", and an unstrided source must not disturb defaults.
func syncAutoInc(dst Execer, table string, next, offset, stride int64) error {
	q := fmt.Sprintf("ALTER TABLE %s AUTO_INCREMENT", table)
	if offset > 0 {
		q += fmt.Sprintf(" OFFSET %d", offset)
	}
	if stride > 0 {
		q += fmt.Sprintf(" STRIDE %d", stride)
	}
	q += fmt.Sprintf(" NEXT %d", next)
	_, err := dst.Exec(q)
	return err
}

func syncTable(src, dst Execer, table string, deadline time.Time) (int, error) {
	data, err := src.Exec("SELECT * FROM " + table)
	if err != nil {
		return 0, err
	}
	if _, err := dst.Exec("DELETE FROM " + table); err != nil {
		return 0, err
	}
	if len(data.Rows) == 0 {
		return 0, nil
	}
	cols := strings.Join(data.Columns, ", ")
	one := "(" + strings.TrimSuffix(strings.Repeat("?, ", len(data.Columns)), ", ") + ")"
	for off := 0; off < len(data.Rows); off += syncBatch {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return 0, ErrSyncTimeout
		}
		end := off + syncBatch
		if end > len(data.Rows) {
			end = len(data.Rows)
		}
		batch := data.Rows[off:end]
		placeholders := strings.TrimSuffix(strings.Repeat(one+", ", len(batch)), ", ")
		args := make([]sqldb.Value, 0, len(batch)*len(data.Columns))
		for _, r := range batch {
			args = append(args, r...)
		}
		q := fmt.Sprintf("INSERT INTO %s (%s) VALUES %s", table, cols, placeholders)
		if _, err := dst.Exec(q, args...); err != nil {
			return 0, err
		}
	}
	return len(data.Rows), nil
}
