package cluster

import (
	"fmt"
	"strings"

	"repro/internal/sqldb"
)

// Execer is the minimal statement surface the sync path needs — satisfied
// by a pooled wire client, a single wire connection, an in-process
// sqldb.SessionExecer, and the cluster Client itself.
type Execer interface {
	Exec(query string, args ...sqldb.Value) (*sqldb.Result, error)
}

// syncBatch bounds rows per INSERT during a replica sync.
const syncBatch = 64

// Sync replays src's data onto dst, table by table: SHOW TABLES to
// enumerate the catalog, SELECT * to read each table, DELETE FROM plus
// batched INSERTs to rewrite it. dst must already have the schema (a fresh
// dbserver creates it before syncing; a rejoining replica kept its own).
// Explicit primary keys keep AUTO_INCREMENT counters aligned, so a synced
// replica assigns the same ids as its source on the next broadcast insert.
// It returns the tables and rows copied.
func Sync(src, dst Execer) (tables, rows int, err error) {
	cat, err := src.Exec("SHOW TABLES")
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: sync: catalog: %w", err)
	}
	for _, row := range cat.Rows {
		table := row[0].AsString()
		n, err := syncTable(src, dst, table)
		if err != nil {
			return tables, rows, fmt.Errorf("cluster: sync %s: %w", table, err)
		}
		tables++
		rows += n
	}
	return tables, rows, nil
}

func syncTable(src, dst Execer, table string) (int, error) {
	data, err := src.Exec("SELECT * FROM " + table)
	if err != nil {
		return 0, err
	}
	if _, err := dst.Exec("DELETE FROM " + table); err != nil {
		return 0, err
	}
	if len(data.Rows) == 0 {
		return 0, nil
	}
	cols := strings.Join(data.Columns, ", ")
	one := "(" + strings.TrimSuffix(strings.Repeat("?, ", len(data.Columns)), ", ") + ")"
	for off := 0; off < len(data.Rows); off += syncBatch {
		end := off + syncBatch
		if end > len(data.Rows) {
			end = len(data.Rows)
		}
		batch := data.Rows[off:end]
		placeholders := strings.TrimSuffix(strings.Repeat(one+", ", len(batch)), ", ")
		args := make([]sqldb.Value, 0, len(batch)*len(data.Columns))
		for _, r := range batch {
			args = append(args, r...)
		}
		q := fmt.Sprintf("INSERT INTO %s (%s) VALUES %s", table, cols, placeholders)
		if _, err := dst.Exec(q, args...); err != nil {
			return 0, err
		}
	}
	return len(data.Rows), nil
}
