package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/pool"
	"repro/internal/sqldb"
)

// slowExecer delays every statement — a stand-in for a stalled sync peer.
type slowExecer struct {
	inner Execer
	delay time.Duration
}

func (s slowExecer) Exec(q string, args ...sqldb.Value) (*sqldb.Result, error) {
	time.Sleep(s.delay)
	return s.inner.Exec(q, args...)
}

func TestSyncWithinDeadline(t *testing.T) {
	reps := startReplicas(t, 2)
	src := sqldb.SessionExecer{S: reps[0].db.NewSession()}
	dst := sqldb.SessionExecer{S: reps[1].db.NewSession()}
	// Unbounded still works.
	if _, _, err := SyncWithin(src, dst, 0); err != nil {
		t.Fatal(err)
	}
	// A destination that takes 30ms per statement blows a 20ms budget
	// within the first table.
	_, _, err := SyncWithin(src, slowExecer{inner: dst, delay: 30 * time.Millisecond}, 20*time.Millisecond)
	if !errors.Is(err, ErrSyncTimeout) {
		t.Fatalf("err = %v, want ErrSyncTimeout", err)
	}
}

// TestRejoinDeadlineLeavesReplicaEjected: a rejoin whose data copy stalls
// must give up at the sync deadline and leave the replica cleanly ejected
// — unhealthy for this client AND marked half-synced for every client
// sharing the DSN — instead of promoting a half-copied data set (or
// hanging forever, the pre-deadline behavior).
func TestRejoinDeadlineLeavesReplicaEjected(t *testing.T) {
	reps := startReplicas(t, 2)
	px, err := chaos.Listen("replica1", reps[1].addr, chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	cfg := Config{
		DSN:         reps[0].addr + "," + px.Addr(),
		PoolSize:    2,
		Timeouts:    pool.Timeouts{Op: 150 * time.Millisecond},
		SyncTimeout: 300 * time.Millisecond,
	}
	c := NewWithConfig(cfg)
	defer c.Close()

	if _, err := c.ExecCached("UPDATE items SET qty = 7 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	// Stall the proxy: the next broadcast's ack from replica 1 times out on
	// the op deadline and ejects it.
	px.Set(chaos.Fault{Kind: chaos.Stall})
	if _, err := c.ExecCached("UPDATE items SET qty = 8 WHERE id = 1"); err != nil {
		t.Fatalf("write-all-available write should survive the stalled replica: %v", err)
	}
	if c.Healthy() != 1 {
		t.Fatalf("healthy = %d, want the stalled replica ejected", c.Healthy())
	}

	// Rejoin against the still-stalled replica: the sync must give up at
	// its deadline, bounded well under a test timeout.
	start := time.Now()
	if err := c.Rejoin(1, true); err == nil {
		t.Fatal("rejoin through a stalled proxy succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("rejoin took %v, want bounded by the deadlines", d)
	}
	if c.Healthy() != 1 {
		t.Fatal("failed rejoin must leave the replica ejected")
	}
	if !c.locks.syncing(px.Addr()) {
		t.Fatal("failed sync must leave the replica marked half-synced for other clients")
	}

	// Heal and rejoin for real.
	px.Clear()
	if err := c.Rejoin(1, true); err != nil {
		t.Fatalf("rejoin after heal: %v", err)
	}
	if c.Healthy() != 2 {
		t.Fatalf("healthy = %d after successful rejoin", c.Healthy())
	}
	if c.locks.syncing(px.Addr()) {
		t.Fatal("successful sync must clear the half-synced mark")
	}
	res := queryReplica(t, reps[1], "SELECT qty FROM items WHERE id = 1")
	if res.Rows[0][0].AsInt() != 8 {
		t.Fatal("rejoined replica missing the write it slept through")
	}
}

// TestPoolWaitTimeoutDoesNotEject: an exhausted pool is client-side
// saturation, not replica failure — Get's wait deadline must surface the
// typed error without ejecting the (perfectly healthy) replica.
func TestPoolWaitTimeoutDoesNotEject(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{
		PoolSize: 1,
		Timeouts: pool.Timeouts{Wait: 40 * time.Millisecond},
	})
	// A write-bracket session borrows the single connection to BOTH
	// replicas and holds them across the bracket.
	s, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("LOCK TABLES audit WRITE"); err != nil {
		t.Fatal(err)
	}
	_, err = c.ExecCached("SELECT name FROM items WHERE id = 1")
	if !errors.Is(err, pool.ErrWaitTimeout) {
		t.Fatalf("read on exhausted pools = %v, want pool.ErrWaitTimeout", err)
	}
	if c.Healthy() != 2 {
		t.Fatalf("healthy = %d; pool saturation must not eject replicas", c.Healthy())
	}
	if _, err := s.Exec("UNLOCK TABLES"); err != nil {
		t.Fatal(err)
	}
	c.Put(s, false)
	if _, err := c.ExecCached("SELECT name FROM items WHERE id = 1"); err != nil {
		t.Fatalf("read after the bracket released: %v", err)
	}
}

// TestSlowReplicaEjection: a replica whose acks trail the pack beyond
// SlowThreshold is ejected from routing even though its transport still
// answers — the slow-but-alive replica otherwise drags every broadcast
// down to its speed.
func TestSlowReplicaEjection(t *testing.T) {
	reps := startReplicas(t, 2)
	px, err := chaos.Listen("replica1", reps[1].addr, chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	c := NewWithConfig(Config{
		DSN:           reps[0].addr + "," + px.Addr(),
		PoolSize:      2,
		SlowThreshold: 100 * time.Millisecond,
	})
	defer c.Close()
	if _, err := c.ExecCached("UPDATE items SET qty = 1 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	px.Set(chaos.Fault{Kind: chaos.Latency, Delay: 300 * time.Millisecond})
	if _, err := c.ExecCached("UPDATE items SET qty = 2 WHERE id = 2"); err != nil {
		t.Fatalf("write with a slow replica: %v", err)
	}
	if c.Healthy() != 1 {
		t.Fatalf("healthy = %d, want the slow replica ejected", c.Healthy())
	}
	if cs := c.ClientStats(); cs.SlowEjections != 1 {
		t.Fatalf("slow ejections = %d, want 1", cs.SlowEjections)
	}
	// Reads now route around it without paying its latency.
	start := time.Now()
	if _, err := c.ExecCached("SELECT name FROM items WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Fatalf("read took %v after the slow replica was ejected", d)
	}
}

// TestEndSyncTaintKeepsCountPositive: when a sync fails, the taint inherits
// the sync's syncCount contribution instead of decrementing and
// re-incrementing — syncing()'s lock-free fast path must never observe a
// transient zero while a half-copied replica still needs reads routed away.
// This pins the counter's balance across the taint lifecycle.
func TestEndSyncTaintKeepsCountPositive(t *testing.T) {
	w := newWriteLocks()
	w.beginSync("a")
	if !w.syncing("a") || w.syncCount.Load() != 1 {
		t.Fatalf("mid-sync: syncing=%v count=%d", w.syncing("a"), w.syncCount.Load())
	}
	w.endSync("a", false)
	if !w.syncing("a") || w.syncCount.Load() != 1 {
		t.Fatalf("after failed sync: syncing=%v count=%d, want taint holding count at 1", w.syncing("a"), w.syncCount.Load())
	}
	// A second failed cycle must not double-count the taint.
	w.beginSync("a")
	w.endSync("a", false)
	if !w.syncing("a") || w.syncCount.Load() != 1 {
		t.Fatalf("after second failed sync: syncing=%v count=%d", w.syncing("a"), w.syncCount.Load())
	}
	// Success clears the taint and the sync's own count.
	w.beginSync("a")
	w.endSync("a", true)
	if w.syncing("a") || w.syncCount.Load() != 0 {
		t.Fatalf("after successful sync: syncing=%v count=%d, want clean zero", w.syncing("a"), w.syncCount.Load())
	}
}

// TestStaleDegradedLatchSelfHeals: a degraded latch that outlives the last
// rejoin (every replica healthy again — e.g. a racing rejoin completed
// between a broadcast's ejection and its enterDegraded) must not leave a
// whole healthy cluster read-only forever: the write gate self-heals, and
// Rejoin on an already-healthy replica clears the latch instead of
// returning early past it.
func TestStaleDegradedLatchSelfHeals(t *testing.T) {
	reps := startReplicas(t, 2)
	c := newTestClient(t, reps, Config{StrictWrites: true})
	c.degraded.Store(true)
	if _, err := c.ExecCached("UPDATE items SET qty = 11 WHERE id = 4"); err != nil {
		t.Fatalf("write on a whole healthy cluster = %v, want the stale latch self-healed", err)
	}
	if c.Degraded() {
		t.Fatal("stale latch must clear once the replica set is whole")
	}
	if cs := c.ClientStats(); cs.DegradedExits != 1 {
		t.Fatalf("degraded exits = %d, want 1", cs.DegradedExits)
	}

	c.degraded.Store(true)
	if err := c.Rejoin(1, false); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() {
		t.Fatal("Rejoin on a healthy replica must still clear the stale latch")
	}
}

// TestMissedWriteOnSaturatedPoolEjects: a replica whose pool wait times out
// during a write broadcast that APPLIED on the other replicas has missed
// the write — it must be ejected (and resynced on rejoin) even though a
// wait timeout is not transport evidence on the read path. Under
// StrictWrites this is also the wedge regression: the degraded latch must
// always come with an ejected replica, so Rejoin has something to bring
// back and an exit path for the latch.
func TestMissedWriteOnSaturatedPoolEjects(t *testing.T) {
	reps := startReplicas(t, 2)
	px, err := chaos.Listen("replica1", reps[1].addr, chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	c := NewWithConfig(Config{
		DSN:          reps[0].addr + "," + px.Addr(),
		PoolSize:     1,
		StrictWrites: true,
		Timeouts:     pool.Timeouts{Wait: 60 * time.Millisecond},
	})
	defer c.Close()
	if _, err := c.ExecCached("UPDATE items SET qty = 1 WHERE id = 5"); err != nil {
		t.Fatal(err)
	}

	// Occupy replica 1's single pooled connection with a slow round trip;
	// a concurrent write on a different table (different write-order lock)
	// applies on replica 0 and times out waiting for replica 1's pool.
	px.Set(chaos.Fault{Kind: chaos.Latency, Delay: 400 * time.Millisecond})
	slow := make(chan error, 1)
	go func() {
		_, err := c.ExecCached("UPDATE items SET qty = 2 WHERE id = 5")
		slow <- err
	}()
	time.Sleep(100 * time.Millisecond)
	if _, err := c.ExecCached("INSERT INTO audit (item, delta) VALUES (?, ?)",
		sqldb.Int(5), sqldb.Int(-1)); err == nil {
		t.Fatal("strict write must fail when a replica's pool stays exhausted mid-broadcast")
	}
	if c.Healthy() != 1 {
		t.Fatalf("healthy = %d, want the replica that missed the write ejected", c.Healthy())
	}
	if !c.Degraded() {
		t.Fatal("strict missed-write failure must latch degraded mode")
	}
	if _, err := c.ExecCached("UPDATE items SET qty = 3 WHERE id = 5"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write in degraded mode = %v, want ErrDegraded", err)
	}
	if err := <-slow; err != nil {
		t.Fatalf("the in-flight slow write should still complete: %v", err)
	}

	// Rejoin with sync replays the missed audit row; the latch clears and
	// writes flow again, leaving the replicas row-identical.
	px.Clear()
	if err := c.Rejoin(1, true); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() || c.Healthy() != 2 {
		t.Fatalf("degraded=%v healthy=%d after full rejoin", c.Degraded(), c.Healthy())
	}
	if _, err := c.ExecCached("UPDATE items SET qty = 9 WHERE id = 5"); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	for i, r := range reps {
		if got := queryReplica(t, r, "SELECT qty FROM items WHERE id = 5").Rows[0][0].AsInt(); got != 9 {
			t.Fatalf("replica %d qty = %d, want 9", i, got)
		}
		if got := queryReplica(t, r, "SELECT delta FROM audit WHERE item = 5"); len(got.Rows) != 1 {
			t.Fatalf("replica %d audit rows = %d, want the missed write resynced", i, len(got.Rows))
		}
	}
}

// TestDegradedModeReadOnly: under StrictWrites, losing a replica flips the
// cluster into explicit read-only degradation — writes fail fast with
// ErrDegraded (no broadcast attempted), reads keep flowing — and a full
// rejoin flips it back.
func TestDegradedModeReadOnly(t *testing.T) {
	reps := startReplicas(t, 2)
	px, err := chaos.Listen("replica1", reps[1].addr, chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	c := NewWithConfig(Config{
		DSN:          reps[0].addr + "," + px.Addr(),
		PoolSize:     2,
		StrictWrites: true,
		Timeouts:     pool.Timeouts{Op: 150 * time.Millisecond},
	})
	defer c.Close()
	if _, err := c.ExecCached("UPDATE items SET qty = 5 WHERE id = 3"); err != nil {
		t.Fatal(err)
	}

	px.Set(chaos.Fault{Kind: chaos.Stall})
	if _, err := c.ExecCached("UPDATE items SET qty = 6 WHERE id = 3"); err == nil {
		t.Fatal("strict write must fail when a replica stalls mid-broadcast")
	}
	if !c.Degraded() {
		t.Fatal("strict failure must latch degraded mode")
	}

	// Writes now fail FAST with the typed error, without broadcasting.
	start := time.Now()
	_, err = c.ExecCached("UPDATE items SET qty = 7 WHERE id = 3")
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("write in degraded mode = %v, want ErrDegraded", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("degraded write took %v, want a fast fail", d)
	}
	// A write transaction fails at BEGIN the same way.
	if err := c.WithTx([]string{"items"}, func(tx *Session) error { return nil }); !errors.Is(err, ErrDegraded) {
		t.Fatalf("WithTx in degraded mode = %v, want ErrDegraded", err)
	}

	// Reads keep flowing off the survivor.
	for i := 0; i < 5; i++ {
		if _, err := c.ExecCached("SELECT name FROM items WHERE id = 3"); err != nil {
			t.Fatalf("degraded read: %v", err)
		}
	}

	px.Clear()
	if err := c.Rejoin(1, true); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() {
		t.Fatal("full rejoin must exit degraded mode")
	}
	if _, err := c.ExecCached("UPDATE items SET qty = 9 WHERE id = 3"); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	cs := c.ClientStats()
	if cs.DegradedEntries != 1 || cs.DegradedExits != 1 || cs.DegradedRejects < 2 {
		t.Fatalf("degraded counters = %+v", cs)
	}
	for i, r := range reps {
		res := queryReplica(t, r, "SELECT qty FROM items WHERE id = 3")
		if got := res.Rows[0][0].AsInt(); got != 9 {
			t.Fatalf("replica %d qty = %d, want 9 (divergence after recovery)", i, got)
		}
	}
}
