// Query-result cache: the level-1 half of the caching tier (DESIGN.md §10).
//
// The cluster client already knows, at commit time, exactly which tables a
// write touched — that is what the per-DSN write-order lock registry keys
// on. This file reuses that scope as a table-version mirror: every
// committed write bumps the counters of the tables it named (route.go,
// writeLocks.versions), and a cached SELECT result is served only while
// every table it references still carries the version it was read under.
// Validation is a handful of atomic loads; invalidation is per-entry and
// lazy (a stale entry is deleted when next looked up, or evicted by LRU).
//
// Why this cannot serve stale data (the §4b-style argument, in short):
//   - A result's version stamp is captured BEFORE the live read that fills
//     the entry is issued. If a write commits in between, the bump lands on
//     top of the pre-capture stamp and the entry validates as stale even
//     though its data may in fact be newer — the error is only ever in the
//     conservative direction (a needless miss, never a stale hit).
//   - A table's version is bumped strictly AFTER the commit is acked
//     server-side, and publication is conservative: any outcome that is not
//     a deterministic server-side failure bumps (a broadcast that died in
//     transport may still have applied). An abort publishes nothing —
//     aborted writes were never visible to any live read, so cache entries
//     filled concurrently saw pre-txn data that is still correct.
//   - Inside a transaction that write-holds a referenced table the cache is
//     bypassed entirely (Session.cacheBypass): read-your-writes stays on
//     the live path, and uncommitted local writes are never published.
//
// Results handed out by the cache are defensive copies in both directions
// (put copies in, get copies out): callers such as internal/ejb mutate
// result rows in place, and a shared cached row would corrupt every later
// reader.
package cluster

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sqldb"
)

// versionOf returns the live counter for one table, creating it on first
// reference. The counter lives on the shared per-DSN registry, so every
// client of the same cluster observes the same version stream.
func (w *writeLocks) versionOf(table string) *atomic.Uint64 {
	if v, ok := w.versions.Load(table); ok {
		return v.(*atomic.Uint64)
	}
	v, _ := w.versions.LoadOrStore(table, new(atomic.Uint64))
	return v.(*atomic.Uint64)
}

// bump publishes a committed write: the named tables' versions advance, a
// write with unknown table set ("" catch-all) advances the wildcard every
// cache entry also validates against, and the content epoch advances
// unconditionally (the page cache's invalidation signal, Client.ContentEpoch).
// Called only after the write is known — or cannot be proven not — to have
// committed server-side.
func (w *writeLocks) bump(tables []string) {
	for _, t := range tables {
		if t == "" {
			w.wild.Add(1)
		} else {
			w.versionOf(t).Add(1)
		}
	}
	w.epoch.Add(1)
}

// stampFor captures the current versions a cached result for readTables
// must be validated against: the wildcard first, then one slot per table.
// Capture happens before the filling read is issued (see package comment).
func (w *writeLocks) stampFor(readTables []string) []uint64 {
	stamp := make([]uint64, 1+len(readTables))
	stamp[0] = w.wild.Load()
	for i, t := range readTables {
		stamp[i+1] = w.versionOf(t).Load()
	}
	return stamp
}

// ContentEpoch reports the cluster-wide write epoch: it advances on every
// committed write through any client sharing this DSN. The HTTP page cache
// keys freshness on it (internal/lb.PageCache); the app tier republishes it
// per response as the X-Content-Epoch header.
//
// On a sharded client the epoch is the SUM of the per-shard epochs — every
// shard's committed writes advance it, so a page cached under the combined
// epoch is invalidated by a write through any shard. (A max would not be
// safe: two shards advancing in lockstep could leave the max unchanged
// while content moved.)
func (c *Client) ContentEpoch() uint64 {
	if c.sh != nil {
		var e uint64
		for _, in := range c.sh.shards {
			e += in.ContentEpoch()
		}
		return e
	}
	return c.locks.epoch.Load()
}

// cacheKey builds the lookup key for (statement, args). The statement text
// is used verbatim — routes already memoizes per distinct text, and two
// spellings of the same query simply occupy two entries. Args are appended
// with a kind tag so Int(1) and String("1") cannot collide.
func cacheKey(query string, args []sqldb.Value) string {
	if len(args) == 0 {
		return query
	}
	var b strings.Builder
	b.Grow(len(query) + 16*len(args))
	b.WriteString(query)
	for _, a := range args {
		b.WriteByte(0)
		switch a.Kind() {
		case sqldb.KindNull:
			b.WriteByte('n')
		case sqldb.KindInt:
			b.WriteByte('i')
			b.WriteString(strconv.FormatInt(a.AsInt(), 10))
		case sqldb.KindFloat:
			b.WriteByte('f')
			b.WriteString(strconv.FormatFloat(a.AsFloat(), 'g', -1, 64))
		default:
			b.WriteByte('s')
			b.WriteString(a.AsString())
		}
	}
	return b.String()
}

// copyResult deep-copies rows (one flat backing array, two allocations)
// so cache storage and caller never share mutable state. Column names are
// shared: they are never mutated by any consumer.
func copyResult(r *sqldb.Result) *sqldb.Result {
	out := &sqldb.Result{
		Columns:      r.Columns,
		RowsAffected: r.RowsAffected,
		LastInsertID: r.LastInsertID,
	}
	if len(r.Rows) == 0 {
		return out
	}
	n := 0
	for _, row := range r.Rows {
		n += len(row)
	}
	flat := make(sqldb.Row, n)
	out.Rows = make([]sqldb.Row, len(r.Rows))
	i := 0
	for ri, row := range r.Rows {
		copy(flat[i:i+len(row)], row)
		out.Rows[ri] = flat[i : i+len(row) : i+len(row)]
		i += len(row)
	}
	return out
}

type cacheEntry struct {
	key   string
	res   *sqldb.Result
	stamp []uint64 // wildcard + per-readTable versions at fill time
	reads []string // the readTables the stamp covers, in stamp order
}

// queryCache is a bounded LRU of validated query results. All methods are
// safe for concurrent use; counters are atomic so Stats never takes the lock.
type queryCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	bypasses      atomic.Int64
}

func newQueryCache(max int) *queryCache {
	if max <= 0 {
		return nil
	}
	return &queryCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns a copy of the entry for key if its stamp still matches the
// live table versions. A version mismatch deletes the entry (per-entry
// invalidation, never a wholesale flush) and counts as an invalidation
// plus the miss the caller is about to take.
func (q *queryCache) get(key string, locks *writeLocks) (*sqldb.Result, bool) {
	q.mu.Lock()
	el, ok := q.byKey[key]
	if !ok {
		q.mu.Unlock()
		q.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !q.validLocked(e, locks) {
		q.ll.Remove(el)
		delete(q.byKey, key)
		q.mu.Unlock()
		q.invalidations.Add(1)
		q.misses.Add(1)
		return nil, false
	}
	q.ll.MoveToFront(el)
	res := copyResult(e.res)
	q.mu.Unlock()
	q.hits.Add(1)
	return res, true
}

// validLocked re-reads the live versions for the entry's table set and
// compares against the fill-time stamp. Equality — not ordering — is the
// test: counters only advance, so any difference means a commit landed
// after the stamp was captured.
func (q *queryCache) validLocked(e *cacheEntry, locks *writeLocks) bool {
	if e.stamp[0] != locks.wild.Load() {
		return false
	}
	for i, t := range e.reads {
		if e.stamp[i+1] != locks.versionOf(t).Load() {
			return false
		}
	}
	return true
}

// put stores a private copy of res under key with the stamp captured
// before the filling read was issued, evicting the LRU entry at capacity.
func (q *queryCache) put(key string, res *sqldb.Result, stamp []uint64, reads []string) {
	e := &cacheEntry{key: key, res: copyResult(res), stamp: stamp, reads: reads}
	q.mu.Lock()
	defer q.mu.Unlock()
	if el, ok := q.byKey[key]; ok {
		el.Value = e
		q.ll.MoveToFront(el)
		return
	}
	for q.ll.Len() >= q.max {
		back := q.ll.Back()
		q.ll.Remove(back)
		delete(q.byKey, back.Value.(*cacheEntry).key)
	}
	q.byKey[key] = q.ll.PushFront(e)
}

// len reports the current entry count (tests).
func (q *queryCache) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ll.Len()
}

// notePublish records a write's table set for version publication: outside
// a transaction the bump is immediate (the write is committed once acked);
// inside one it is deferred into the session's writeSet until COMMIT
// flushes it — an abort must publish nothing, because aborted writes were
// never visible to any read that could have filled a cache entry.
func (s *Session) notePublish(tables []string) {
	if !s.inTxn {
		s.c.locks.bump(tables)
		return
	}
	if s.writeSet == nil {
		s.writeSet = make(map[string]bool)
	}
	for _, t := range tables {
		s.writeSet[t] = true
	}
}

// flushWrites publishes the transaction's accumulated write set (COMMIT,
// or any path that may have committed server-side).
func (s *Session) flushWrites() {
	if len(s.writeSet) == 0 {
		return
	}
	tables := make([]string, 0, len(s.writeSet))
	for t := range s.writeSet {
		tables = append(tables, t)
	}
	s.c.locks.bump(tables)
	s.writeSet = nil
}

// discardWrites drops the pending write set without publishing (ROLLBACK).
func (s *Session) discardWrites() { s.writeSet = nil }

// cacheBypass reports whether a read must skip the cache: inside an open
// transaction whose declared (held) or observed (writeSet) write set
// intersects the read's tables — including the catch-all "" of an
// undeclared transaction — the read must run live to see the session's own
// uncommitted writes, and its result must not be published as what other
// clients should see.
func (s *Session) cacheBypass(rt route) bool {
	if !s.inTxn {
		return false
	}
	if s.writeSet[""] {
		return true
	}
	for _, h := range s.held {
		if h == "" {
			return true
		}
	}
	for _, t := range rt.readTables {
		if s.writeSet[t] {
			return true
		}
		for _, h := range s.held {
			if h == t {
				return true
			}
		}
	}
	return false
}

// cachedRead wraps one live read with the cache protocol: serve a validated
// entry, or capture the stamp, run the read, and fill. bypass is set by
// sessions whose open transaction write-holds a referenced table — the
// read must see the session's own uncommitted writes, so it stays live and
// fills nothing (the txn's result is not what other clients should see).
//
// run receives a restamp hook it must invoke immediately before every
// attempt that could produce the rows — the pool's stale-connection retry,
// the read router's failover to the next replica. The stamp that fills the
// entry must belong to the attempt that actually read: a stamp captured
// before a failed first attempt predates any write that committed during
// the retry window, so the fill would be born stale and every lookup a
// spurious miss (monotone versions keep the error conservative, but the
// cache stops caching). Paths with no retry may ignore the hook — the
// pre-run capture below still covers them.
func (c *Client) cachedRead(rt route, query string, args []sqldb.Value, bypass bool, run func(restamp func()) (*sqldb.Result, error)) (*sqldb.Result, error) {
	q := c.qcache
	if q == nil || rt.readTables == nil {
		return run(func() {})
	}
	if bypass {
		q.bypasses.Add(1)
		return run(func() {})
	}
	key := cacheKey(query, args)
	if res, ok := q.get(key, c.locks); ok {
		return res, nil
	}
	var stamp []uint64
	restamp := func() { stamp = c.locks.stampFor(rt.readTables) }
	restamp()
	res, err := run(restamp)
	if err != nil {
		return nil, err
	}
	q.put(key, res, stamp, rt.readTables)
	return res, nil
}
