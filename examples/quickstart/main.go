// Quickstart: assemble one of the paper's middleware configurations as a
// real multi-tier system (web server, servlet containers over AJP, SQL
// database over TCP — all in this process), here with the database tier
// replicated twice behind the read-one-write-all cluster client AND the
// application tier replicated twice behind the session-affine load
// balancer, issue a few interactions against it, and print what happened.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/httpd/httpclient"
	"repro/internal/perfsim"
)

func main() {
	// WsServlet-DB(sync): servlet containers with engine-side locking,
	// 2 app backends behind the load balancer (DESIGN.md §3b), over a
	// 2-replica database tier (reads load-balance, writes broadcast;
	// DESIGN.md §3).
	lab, err := core.Start(core.Config{
		Arch:        perfsim.ArchServletSync,
		Benchmark:   perfsim.Auction,
		Seed:        1,
		DBReplicas:  2,
		AppReplicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()
	fmt.Printf("auction site up as %s at http://%s/rubis/home (app backends: %d, db replicas: %v)\n",
		perfsim.ArchServletSync, lab.WebAddr(), lab.AppBackends(), lab.ReplicaAddrs())

	c := httpclient.New(lab.WebAddr(), 10*time.Second)
	defer c.Close()
	for _, path := range []string{
		"/rubis/home",
		"/rubis/searchitemsincategory?category=2",
		"/rubis/viewitem?item=3",
		"/rubis/storebid?item=3&user=7&bid=250",
		"/rubis/viewitem?item=3",
	} {
		resp, err := c.Get(path)
		if err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
		fmt.Printf("GET %-45s -> %d (%d bytes)\n", path, resp.Status, len(resp.Body))
	}
	fmt.Println("the second viewitem reflects the stored bid — state flows through all tiers")

	// The same numbers are served as JSON at GET /status.
	fmt.Println("\nper-tier telemetry:")
	fmt.Print(lab.Telemetry().Format())
}
