// Figures example: regenerate one figure of the paper with the calibrated
// cluster simulation and print its series — the minimal version of
// cmd/repro for a single figure.
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/perfsim"
)

func main() {
	id := perfsim.Fig11 // auction bidding throughput by default
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n < 5 || n > 14 {
			fmt.Fprintln(os.Stderr, "usage: figures [5-14]")
			os.Exit(2)
		}
		id = perfsim.FigureID(n)
	}
	opt := perfsim.Options{Seed: 1, RampUp: 120, Measure: 180}
	fd := perfsim.Figure(id, opt)
	fmt.Printf("Figure %d: %s\n\n", fd.ID, fd.Title)
	if fd.CPU {
		fmt.Printf("%-22s %8s %8s %8s %8s %8s\n", "configuration", "ipm", "Web%", "Servlet%", "EJB%", "DB%")
		for _, c := range fd.Curves {
			p := c.Peak()
			fmt.Printf("%-22s %8.0f %8.1f %8.1f %8.1f %8.1f\n", c.Arch, p.ThroughputIPM,
				p.CPU[perfsim.TierWeb], p.CPU[perfsim.TierServlet],
				p.CPU[perfsim.TierEJB], p.CPU[perfsim.TierDB])
		}
		return
	}
	fmt.Printf("%-8s", "clients")
	for _, c := range fd.Curves {
		fmt.Printf(" %20s", c.Arch)
	}
	fmt.Println()
	for i := range fd.Curves[0].Results {
		fmt.Printf("%-8d", fd.Curves[0].Results[i].Clients)
		for _, c := range fd.Curves {
			fmt.Printf(" %20.0f", c.Results[i].ThroughputIPM)
		}
		fmt.Println()
	}
}
