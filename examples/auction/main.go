// Auction example: drive the bidding mix against the EJB configuration and
// show the architectural signature the paper measures in §6.1 — the flood
// of short container-generated statements between the EJB server and the
// database.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/perfsim"
	"repro/internal/workload"
)

func main() {
	lab, err := core.Start(core.Config{
		Arch:      perfsim.ArchEJB,
		Benchmark: perfsim.Auction,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	rep, err := lab.Run(workload.Config{
		Clients:     6,
		Mix:         "bidding",
		ThinkMean:   5 * time.Millisecond,
		SessionMean: 2 * time.Second,
		RampUp:      300 * time.Millisecond,
		Measure:     2 * time.Second,
		RampDown:    200 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	queries := lab.EJBQueryCount()
	fmt.Printf("Ws-Servlet-EJB-DB bidding mix: %6.0f ipm, mean %5.1fms, errors %d\n",
		rep.ThroughputIPM, rep.Latency.Mean()*1000, rep.Errors)
	fmt.Printf("EJB container issued %d statements for %d interactions: %.1f per interaction\n",
		queries, rep.Interactions, float64(queries)/float64(rep.Interactions+1))
	fmt.Println("(§6.1: \"a very large number of small packets ... accesses to fields in")
	fmt.Println(" the beans that require a single value to be read or updated\")")
}
