// Bookstore example: run a scaled-down TPC-W shopping-mix experiment
// against two real configurations (in-process module vs servlet container
// with engine-side locking) and compare their measured behaviour — the
// miniature, single-host version of the paper's Figure 5 methodology.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/perfsim"
	"repro/internal/workload"
)

func main() {
	for _, arch := range []perfsim.Arch{perfsim.ArchPHP, perfsim.ArchServletSync} {
		lab, err := core.Start(core.Config{
			Arch:      arch,
			Benchmark: perfsim.Bookstore,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := lab.Run(workload.Config{
			Clients:     8,
			Mix:         "shopping",
			ThinkMean:   5 * time.Millisecond,
			SessionMean: 2 * time.Second,
			RampUp:      300 * time.Millisecond,
			Measure:     2 * time.Second,
			RampDown:    200 * time.Millisecond,
			FetchImages: true,
			Seed:        42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %6.0f ipm  mean %6.1fms  p95 %6.1fms  errors %d  images %d\n",
			arch, rep.ThroughputIPM,
			rep.Latency.Mean()*1000, rep.Latency.Percentile(95)*1000,
			rep.Errors, rep.ImageFetches)
		for _, name := range []string{"home", "productdetail", "buyconfirm"} {
			fmt.Printf("  %-20s %d completions\n", name, rep.ByInteraction[name])
		}
		lab.Close()
	}
	fmt.Println("\nNote: on one host both configurations share every CPU, so the paper's")
	fmt.Println("placement effects don't appear here; run cmd/repro for the figure shapes.")
}
