// Package repro's root benchmarks regenerate every figure of the paper's
// evaluation (Figures 5-14) plus the in-text measurements and the ablation
// studies DESIGN.md calls out. Run them with
//
//	go test -bench=. -benchmem
//
// Throughput figures report interactions/minute as the custom metric
// "ipm" (per configuration sub-benchmark); CPU figures report the
// bottleneck tier's utilization as "cpu%". Shapes, not absolute numbers,
// are the reproduction target — see EXPERIMENTS.md.
package repro_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpd/httpclient"
	"repro/internal/perfsim"
	"repro/internal/pool"
	"repro/internal/sqldb"
	"repro/internal/workload"

	"repro/internal/core"
)

// benchOpt keeps bench runs tractable; cmd/repro uses the full windows.
func benchOpt() perfsim.Options {
	return perfsim.Options{Seed: 1, RampUp: 80, Measure: 120}
}

// benchFigureThroughput runs one throughput figure: each configuration is a
// sub-benchmark reporting its peak ipm over a short client sweep.
func benchFigureThroughput(b *testing.B, bench perfsim.Benchmark, mix perfsim.Mix, sweep []int) {
	for _, a := range perfsim.Archs() {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				best := 0.0
				for _, n := range sweep {
					r := perfsim.Run(bench, mix, a, n, benchOpt())
					if r.ThroughputIPM > best {
						best = r.ThroughputIPM
					}
				}
				peak = best
			}
			b.ReportMetric(peak, "ipm")
		})
	}
}

// benchFigureCPU runs one CPU-bars figure: per configuration, utilization
// of each tier at a near-peak load.
func benchFigureCPU(b *testing.B, bench perfsim.Benchmark, mix perfsim.Mix, clients int) {
	for _, a := range perfsim.Archs() {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			var r perfsim.Result
			for i := 0; i < b.N; i++ {
				r = perfsim.Run(bench, mix, a, clients, benchOpt())
			}
			b.ReportMetric(r.CPU[perfsim.TierWeb], "web_cpu%")
			b.ReportMetric(r.CPU[perfsim.TierDB], "db_cpu%")
			if v, ok := r.CPU[perfsim.TierServlet]; ok {
				b.ReportMetric(v, "servlet_cpu%")
			}
			if v, ok := r.CPU[perfsim.TierEJB]; ok {
				b.ReportMetric(v, "ejb_cpu%")
			}
			b.ReportMetric(r.ThroughputIPM, "ipm")
		})
	}
}

var (
	bookSweep   = []int{100, 200, 450}
	bidSweep    = []int{700, 1100, 1600}
	browseSweep = []int{1100, 1800, 2500}
)

// BenchmarkFig05BookstoreShoppingThroughput — Figure 5.
func BenchmarkFig05BookstoreShoppingThroughput(b *testing.B) {
	benchFigureThroughput(b, perfsim.Bookstore, perfsim.ShoppingMix, bookSweep)
}

// BenchmarkFig06BookstoreShoppingCPU — Figure 6.
func BenchmarkFig06BookstoreShoppingCPU(b *testing.B) {
	benchFigureCPU(b, perfsim.Bookstore, perfsim.ShoppingMix, 200)
}

// BenchmarkFig07BookstoreBrowsingThroughput — Figure 7.
func BenchmarkFig07BookstoreBrowsingThroughput(b *testing.B) {
	benchFigureThroughput(b, perfsim.Bookstore, perfsim.BrowsingMix, bookSweep)
}

// BenchmarkFig08BookstoreBrowsingCPU — Figure 8.
func BenchmarkFig08BookstoreBrowsingCPU(b *testing.B) {
	benchFigureCPU(b, perfsim.Bookstore, perfsim.BrowsingMix, 150)
}

// BenchmarkFig09BookstoreOrderingThroughput — Figure 9.
func BenchmarkFig09BookstoreOrderingThroughput(b *testing.B) {
	benchFigureThroughput(b, perfsim.Bookstore, perfsim.OrderingMix, bookSweep)
}

// BenchmarkFig10BookstoreOrderingCPU — Figure 10.
func BenchmarkFig10BookstoreOrderingCPU(b *testing.B) {
	benchFigureCPU(b, perfsim.Bookstore, perfsim.OrderingMix, 200)
}

// BenchmarkFig11AuctionBiddingThroughput — Figure 11.
func BenchmarkFig11AuctionBiddingThroughput(b *testing.B) {
	benchFigureThroughput(b, perfsim.Auction, perfsim.BiddingMix, bidSweep)
}

// BenchmarkFig12AuctionBiddingCPU — Figure 12.
func BenchmarkFig12AuctionBiddingCPU(b *testing.B) {
	benchFigureCPU(b, perfsim.Auction, perfsim.BiddingMix, 1100)
}

// BenchmarkFig13AuctionBrowsingThroughput — Figure 13.
func BenchmarkFig13AuctionBrowsingThroughput(b *testing.B) {
	benchFigureThroughput(b, perfsim.Auction, perfsim.BrowsingMix, browseSweep)
}

// BenchmarkFig14AuctionBrowsingCPU — Figure 14.
func BenchmarkFig14AuctionBrowsingCPU(b *testing.B) {
	benchFigureCPU(b, perfsim.Auction, perfsim.BrowsingMix, 1800)
}

// BenchmarkIPCPerCharCost measures §6.1's in-text number: the cost of
// moving dynamic content between the servlet engine and the web server,
// per byte, on the real AJP implementation.
func BenchmarkIPCPerCharCost(b *testing.B) {
	lab, err := core.Start(core.Config{Arch: perfsim.ArchServlet, Benchmark: perfsim.Auction})
	if err != nil {
		b.Fatal(err)
	}
	defer lab.Close()
	c := httpclient.New(lab.WebAddr(), 10*time.Second)
	defer c.Close()
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Get("/rubis/viewitem?item=1")
		if err != nil {
			b.Fatal(err)
		}
		bytes += int64(len(resp.Body))
	}
	b.StopTimer()
	if bytes > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(bytes)/1000, "µs/char")
	}
}

// BenchmarkEJBQueryTraffic measures §6.1's other in-text number: the small
// statements per interaction the EJB container sends to the database.
func BenchmarkEJBQueryTraffic(b *testing.B) {
	lab, err := core.Start(core.Config{Arch: perfsim.ArchEJB, Benchmark: perfsim.Auction})
	if err != nil {
		b.Fatal(err)
	}
	defer lab.Close()
	c := httpclient.New(lab.WebAddr(), 10*time.Second)
	defer c.Close()
	before := lab.EJBQueryCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(fmt.Sprintf("/rubis/viewitem?item=%d", 1+i%20)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(lab.EJBQueryCount()-before)/float64(b.N), "stmts/interaction")
}

// BenchmarkRealStackFrontEndCost compares the per-interaction front-end
// cost of the three dispatch paths (in-process module vs AJP servlet vs
// AJP+RMI EJB) on the real stack — the paper's §6 ordering PHP < servlet <
// EJB in cost.
func BenchmarkRealStackFrontEndCost(b *testing.B) {
	for _, a := range []perfsim.Arch{perfsim.ArchPHP, perfsim.ArchServlet, perfsim.ArchEJB} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			lab, err := core.Start(core.Config{Arch: a, Benchmark: perfsim.Auction})
			if err != nil {
				b.Fatal(err)
			}
			defer lab.Close()
			c := httpclient.New(lab.WebAddr(), 10*time.Second)
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Get("/rubis/viewitem?item=2"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealStackWorkload drives the full emulator against the real
// stack briefly per architecture, reporting achieved ipm.
func BenchmarkRealStackWorkload(b *testing.B) {
	for _, a := range []perfsim.Arch{perfsim.ArchPHP, perfsim.ArchServletSync, perfsim.ArchEJB} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			lab, err := core.Start(core.Config{Arch: a, Benchmark: perfsim.Auction})
			if err != nil {
				b.Fatal(err)
			}
			defer lab.Close()
			var rep *workload.Report
			for i := 0; i < b.N; i++ {
				rep, err = lab.Run(workload.Config{
					Clients: 8, Mix: "bidding",
					ThinkMean: time.Millisecond, SessionMean: time.Second,
					RampUp: 50 * time.Millisecond, Measure: 400 * time.Millisecond,
					Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.ThroughputIPM, "ipm")
			if rep.Tiers != nil {
				// The paper's headline observable: which tier saturated.
				b.Logf("bottleneck=%s\n%s", rep.Bottleneck(), rep.FormatTiers())
			}
		})
	}
}

// BenchmarkClusterReplicaSweep opens the new scenario axis past the
// paper: the same workload over a 1-, 2- and 4-replica database tier
// (read-one-write-all cluster, DESIGN.md §3), reporting achieved ipm.
func BenchmarkClusterReplicaSweep(b *testing.B) {
	for _, replicas := range []int{1, 2, 4} {
		replicas := replicas
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			lab, err := core.Start(core.Config{
				Arch: perfsim.ArchServletSync, Benchmark: perfsim.Auction,
				DBReplicas: replicas,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer lab.Close()
			var rep *workload.Report
			for i := 0; i < b.N; i++ {
				rep, err = lab.Run(workload.Config{
					Clients: 8, Mix: "browsing",
					ThinkMean: time.Millisecond, SessionMean: time.Second,
					RampUp: 50 * time.Millisecond, Measure: 400 * time.Millisecond,
					Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.ThroughputIPM, "ipm")
		})
	}
}

// BenchmarkShardSweep opens the partition-the-data axis (DESIGN.md §11):
// the write-heavy bidding mix over one and two shard groups, one replica
// each. Replication (BenchmarkClusterReplicaSweep) scales reads but makes
// writes *more* expensive — every replica applies them; sharding is the
// axis that scales writes, because a pinned write costs one shard group
// and the groups take them in parallel. The reported write_ipm counts
// only the mix's write-bearing interactions.
//
// The sweep injects a fixed wire latency on every app→db link (the chaos
// proxy's Latency fault) and pins each shard group to one connection, so
// a shard group's capacity is its serial statement pipeline — round trips
// over a link with real latency, the paper's testbed. That is the resource
// sharding multiplies, and it is timer-bound rather than scheduler-bound,
// which keeps the sweep reproducible on small (even single-core) runners
// where a CPU-bound stack cannot show horizontal scaling at all.
func BenchmarkShardSweep(b *testing.B) {
	writeInteractions := []string{"storebid", "storebuynow", "storecomment", "registeritem", "registeruser"}
	for _, shards := range []int{1, 2} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			lab, err := core.Start(core.Config{
				// The non-sync servlet arch is the transactional one: its
				// write sections run inside database transactions, so write
				// contention lives in the database tier — the tier this
				// sweep partitions. (The sync archs serialize writes in the
				// container lock manager, which no amount of DB capacity
				// relieves.)
				Arch: perfsim.ArchServlet, Benchmark: perfsim.Auction,
				// A wide app tier over a one-connection DB pool per shard
				// group: the serial app→db statement pipeline is the
				// bottleneck, and it is what sharding multiplies.
				DBShards: shards, DBReplicas: 1, DBPoolSize: 1, AppPoolSize: 24,
				// Saturation must queue, not time out: the 1-shard arm is
				// meant to be a steady floor, not error-retry noise.
				DBTimeouts: pool.Timeouts{Dial: 2 * time.Second, Op: 2 * time.Second, Wait: 2 * time.Second},
				Chaos:      true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer lab.Close()
			for i := 0; lab.DBProxy(i) != nil; i++ {
				lab.SlowReplica(i, 200*time.Microsecond)
			}
			var rep *workload.Report
			for i := 0; i < b.N; i++ {
				rep, err = lab.Run(workload.Config{
					Clients: 24, Mix: "bidding",
					ThinkMean: time.Millisecond, SessionMean: time.Second,
					RampUp: 100 * time.Millisecond, Measure: 1200 * time.Millisecond,
					Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			var writes int64
			for _, name := range writeInteractions {
				writes += rep.ByInteraction[name]
			}
			b.ReportMetric(float64(writes)/rep.MeasureDuration.Seconds()*60, "write_ipm")
			b.ReportMetric(rep.ThroughputIPM, "ipm")
		})
	}
}

// BenchmarkAppReplicaSweep opens the scale-the-middle-tier axis the paper
// asks about: the same workload over a 1-, 2- and 4-backend application
// tier behind the front-end load balancer (internal/lb), with the database
// tier fixed at one replica. The per-backend AJP/database pools are kept
// small so the application tier is the capacity being added — the axis
// that, next to BenchmarkClusterReplicaSweep, answers "replicate the app
// tier or the DB tier?" with numbers.
func BenchmarkAppReplicaSweep(b *testing.B) {
	for _, backends := range []int{1, 2, 4} {
		backends := backends
		b.Run(fmt.Sprintf("appbackends=%d", backends), func(b *testing.B) {
			lab, err := core.Start(core.Config{
				Arch: perfsim.ArchServletSync, Benchmark: perfsim.Auction,
				AppReplicas: backends, DBReplicas: 1, DBPoolSize: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer lab.Close()
			var rep *workload.Report
			for i := 0; i < b.N; i++ {
				rep, err = lab.Run(workload.Config{
					Clients: 48, Mix: "browsing",
					ThinkMean: time.Millisecond, SessionMean: time.Second,
					RampUp: 50 * time.Millisecond, Measure: 400 * time.Millisecond,
					Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.ThroughputIPM, "ipm")
		})
	}
}

// BenchmarkTxnContentionSweep opens the rollback-under-contention axis: the
// canonical short write transaction (read a row, insert a child, update the
// parent) runs from parallel workers against 1, 4 and 32 hot rows — from
// every transaction colliding on one row to mostly disjoint write sets —
// with a third of the transactions aborting. Measures the transaction
// subsystem end to end (wire v3 frames, cluster write-order locks, undo
// rollback) under real goroutine concurrency.
func BenchmarkTxnContentionSweep(b *testing.B) {
	for _, hot := range []int{1, 4, 32} {
		hot := hot
		b.Run(fmt.Sprintf("hot=%d", hot), func(b *testing.B) {
			lab, err := core.Start(core.Config{
				Arch: perfsim.ArchServletSync, Benchmark: perfsim.Auction,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer lab.Close()
			cl := lab.Cluster()
			abortErr := fmt.Errorf("contention abort")
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					item := sqldb.Int(1 + n%int64(hot))
					err := cl.WithTx([]string{"bids", "items"}, func(tx *cluster.Session) error {
						res, err := tx.ExecCached("SELECT max_bid FROM items WHERE id = ?", item)
						if err != nil {
							return err
						}
						if len(res.Rows) == 0 {
							return fmt.Errorf("missing item %v", item)
						}
						bid := res.Rows[0][0].AsFloat() + 1
						if _, err := tx.ExecCached(
							`INSERT INTO bids (item_id, user_id, bid, max_bid, qty, bid_date)
							 VALUES (?, 1, ?, ?, 1, 12006)`,
							item, sqldb.Float(bid), sqldb.Float(bid*1.1)); err != nil {
							return err
						}
						if _, err := tx.ExecCached(
							"UPDATE items SET nb_bids = nb_bids + 1, max_bid = ? WHERE id = ?",
							sqldb.Float(bid), item); err != nil {
							return err
						}
						if n%3 == 0 {
							return abortErr // a third of the bids roll back
						}
						return nil
					})
					if err != nil && err != abortErr {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := lab.DB().TxnStats()
			b.ReportMetric(float64(st.Rollbacks), "aborts")
			b.ReportMetric(float64(st.DeadlockTimeouts), "dl_timeouts")
		})
	}
}

// BenchmarkReadOnlyTxnSweep measures the reclaimed correctness tax: the
// same three-SELECT read-only business method bracketed by WithTx (full
// transaction — catch-all write-order lock excluding every writer,
// BEGIN/COMMIT broadcast to every replica) versus WithReadTx (pinned
// replica, MVCC snapshots, no cluster locks) over a two-replica database
// tier. The fullTx catch-all also serializes the parallel workers against
// each other; the readTx workers run concurrently — that parallelism is
// the point of the read-only path, so it is measured, not factored out.
func BenchmarkReadOnlyTxnSweep(b *testing.B) {
	for _, mode := range []string{"fullTx", "readTx"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			lab, err := core.Start(core.Config{
				Arch: perfsim.ArchServletSync, Benchmark: perfsim.Auction,
				DBReplicas: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer lab.Close()
			cl := lab.Cluster()
			body := func(tx *cluster.Session) error {
				for _, id := range []int64{1, 2, 3} {
					if _, err := tx.ExecCached(
						"SELECT max_bid FROM items WHERE id = ?", sqldb.Int(id)); err != nil {
						return err
					}
				}
				return nil
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					var err error
					if mode == "readTx" {
						err = cl.WithReadTx(body)
					} else {
						err = cl.WithTx(nil, body)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkCacheSweep measures the caching tier (DESIGN.md §10) on the
// real stack: the full emulator with both cache levels off and on, across
// a read-heavy and a write-heavy mix. The browsing mix is where the tier
// earns its keep — most interactions are anonymous catalog reads that the
// page cache can replay outright and whose queries the result cache
// absorbs; the bidding mix bounds the cost of carrying the caches when
// commits keep invalidating them.
func BenchmarkCacheSweep(b *testing.B) {
	for _, mix := range []string{"browsing", "bidding"} {
		for _, caches := range []string{"off", "on"} {
			mix, caches := mix, caches
			b.Run(fmt.Sprintf("mix=%s/caches=%s", mix, caches), func(b *testing.B) {
				cfg := core.Config{
					Arch: perfsim.ArchServletSync, Benchmark: perfsim.Auction,
				}
				if caches == "on" {
					cfg.DBQueryCache = 512
					cfg.PageCache = 256
					cfg.PageCacheTTL = time.Second
				}
				lab, err := core.Start(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer lab.Close()
				var rep *workload.Report
				for i := 0; i < b.N; i++ {
					rep, err = lab.Run(workload.Config{
						Clients: 8, Mix: mix,
						ThinkMean: time.Millisecond, SessionMean: time.Second,
						RampUp: 50 * time.Millisecond, Measure: 400 * time.Millisecond,
						Seed: 7,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(rep.ThroughputIPM, "ipm")
				if rep.Tiers != nil {
					for _, tier := range rep.Tiers.Tiers {
						if n := tier.PageCacheHits + tier.PageCacheMisses; n > 0 {
							b.ReportMetric(100*float64(tier.PageCacheHits)/float64(n), "page_hit%")
						}
						if n := tier.QueryCacheHits + tier.QueryCacheMisses; n > 0 {
							b.ReportMetric(100*float64(tier.QueryCacheHits)/float64(n), "query_hit%")
						}
					}
				}
			})
		}
	}
}

// BenchmarkWALCommitSweep prices durability (DESIGN.md §12): parallel
// auto-commit INSERTs against one engine, purely in memory versus through
// the write-ahead log at several group-commit windows. Acks follow fsync,
// so the wal modes pay real disk latency; the appends/fsync metric is the
// group-commit amortization — how many commits shared each flush. The
// window sweep brackets the latency/batching trade: a narrow window holds
// commits briefly but batches less, a wide one the reverse. No sub-ms
// window mode: below the scheduler tick its ns/op measures timer jitter
// on a contended runner, not group commit, and would gate noise.
func BenchmarkWALCommitSweep(b *testing.B) {
	for _, mode := range []string{"mem", "wal-1ms", "wal-4ms"} {
		mode := mode
		b.Run("mode="+mode, func(b *testing.B) {
			db := sqldb.New()
			sess := db.NewSession()
			if _, err := sess.Exec(
				"CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v INT)"); err != nil {
				b.Fatal(err)
			}
			sess.Close()
			if mode != "mem" {
				opts := sqldb.WALOptions{Dir: b.TempDir(), CheckpointBytes: -1}
				switch mode {
				case "wal-1ms":
					opts.FlushInterval = time.Millisecond
				case "wal-4ms":
					opts.FlushInterval = 4 * time.Millisecond
				}
				if _, err := db.AttachWAL(opts); err != nil {
					b.Fatal(err)
				}
				defer db.CloseWAL()
			}
			// The group-commit wait is I/O-bound, not CPU-bound: oversubscribe
			// the workers so concurrent commits exist to share an fsync even
			// on a single-CPU runner.
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				s := db.NewSession()
				defer s.Close()
				for pb.Next() {
					if _, err := s.Exec("INSERT INTO t (v) VALUES (?)", sqldb.Int(1)); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if ws := db.WALStats(); ws.Fsyncs > 0 {
				b.ReportMetric(float64(ws.Appends)/float64(ws.Fsyncs), "appends/fsync")
			}
		})
	}
}

// --- ablation benches (DESIGN.md §7) ---

// BenchmarkAblationSyncLocking isolates the paper's sync delta on the
// write-heavy mix.
func BenchmarkAblationSyncLocking(b *testing.B) {
	for _, a := range []perfsim.Arch{perfsim.ArchServlet, perfsim.ArchServletSync} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			var r perfsim.Result
			for i := 0; i < b.N; i++ {
				r = perfsim.Run(perfsim.Bookstore, perfsim.OrderingMix, a, 300, benchOpt())
			}
			b.ReportMetric(r.ThroughputIPM, "ipm")
			b.ReportMetric(r.CPU[perfsim.TierDB], "db_cpu%")
		})
	}
}

// BenchmarkAblationCMPGranularity compares per-field CMP stores against
// write-behind batching (ejb.Config.WriteBehind) in the simulation's terms:
// the CMP fanout knob.
func BenchmarkAblationCMPGranularity(b *testing.B) {
	for _, fanout := range []int{1, 4, 7, 12} {
		fanout := fanout
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			costs := perfsim.DefaultCosts()
			costs.CMPFanout = fanout
			opt := benchOpt()
			opt.Costs = &costs
			var r perfsim.Result
			for i := 0; i < b.N; i++ {
				r = perfsim.Run(perfsim.Auction, perfsim.BiddingMix, perfsim.ArchEJB, 900, opt)
			}
			b.ReportMetric(r.ThroughputIPM, "ipm")
		})
	}
}

// BenchmarkAblationDedicatedTier isolates the extra-machine delta on the
// front-end-bound benchmark.
func BenchmarkAblationDedicatedTier(b *testing.B) {
	for _, a := range []perfsim.Arch{perfsim.ArchServlet, perfsim.ArchServletDedicated} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			var r perfsim.Result
			for i := 0; i < b.N; i++ {
				r = perfsim.Run(perfsim.Auction, perfsim.BiddingMix, a, 1300, benchOpt())
			}
			b.ReportMetric(r.ThroughputIPM, "ipm")
		})
	}
}

// BenchmarkAblationPoolSize sweeps the engine-side connection pool, the
// parameter that bounds database concurrency (beyond-paper extension).
func BenchmarkAblationPoolSize(b *testing.B) {
	for _, size := range []int{4, 12, 32, 96} {
		size := size
		b.Run(fmt.Sprintf("pool=%d", size), func(b *testing.B) {
			costs := perfsim.DefaultCosts()
			costs.DBPoolSize = size
			opt := benchOpt()
			opt.Costs = &costs
			var r perfsim.Result
			for i := 0; i < b.N; i++ {
				r = perfsim.Run(perfsim.Bookstore, perfsim.ShoppingMix, perfsim.ArchServletSync, 300, opt)
			}
			b.ReportMetric(r.ThroughputIPM, "ipm")
		})
	}
}
