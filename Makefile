# Paper-reproduction build targets. `make bench-json` records the perf
# trajectory: it runs the paper-figure and wire-protocol benchmarks and
# writes BENCH_<n>.json (see cmd/benchjson). `make ci` mirrors the GitHub
# workflow locally: lint, build, race tests, bench smoke and the
# perf-regression gate against the committed baseline.

GO ?= go
BASELINE ?= BENCH_6.json
THRESHOLD ?= 10

# Per-package statement-coverage floors for `make cover` (pkg:percent).
# The transaction-bearing packages are held to a floor: advisory on pull
# requests in CI, enforced on pushes to main. The sqldb floor rose with the
# durability work (write-ahead log, recovery, crash harness).
COVER_FLOORS ?= repro/internal/sqldb:80 repro/internal/cluster:60

.PHONY: build test race vet lint fmt docs-lint bench bench-json bench-smoke bench-gate chaos-smoke wal-torture cover ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; any output fails the target.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Documentation hygiene: dead relative links in the markdown docs and
# internal/* packages missing a package comment fail the lint job.
docs-lint:
	$(GO) run ./cmd/doclint README.md DESIGN.md PROTOCOL.md PAPER.md PAPERS.md

lint: fmt vet docs-lint

# Full benchmark run (paper figures + ablations), human-readable.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Machine-readable snapshot of the headline benchmarks -> BENCH_<n>.json.
# Refuses a dirty working tree: a recorded BENCH file must describe a
# committed state, or the trajectory it documents cannot be reproduced.
bench-json:
	@if [ -n "$$(git status --porcelain)" ]; then \
		echo "bench-json: working tree dirty — commit or stash first:"; \
		git status --porcelain; exit 1; fi
	$(GO) run ./cmd/benchjson

# One-iteration smoke run: fails fast when a protocol change breaks a
# benchmark, without measuring anything (CI runs this).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Perf-regression gate: re-measure the headline benchmarks (best sample
# across 3 spread-out rounds of 2 runs each — noise-robust) and fail on a
# >$(THRESHOLD)% slowdown against $(BASELINE). Writes BENCH_ci.json.
bench-gate:
	$(GO) run ./cmd/benchjson -out BENCH_ci.json -count 2 -rounds 3 -benchtime 0.5s \
		-compare $(BASELINE) -threshold $(THRESHOLD)

# Chaos smoke: the deterministic fault-injection matrix (tier × fault ×
# timing) plus the slow-failure regressions in cluster and lb, under
# -race with a hard timeout — a hang past a deadline is itself the bug.
chaos-smoke:
	$(GO) test -race -timeout 120s ./internal/chaos
	$(GO) test -race -timeout 180s \
		-run 'Chaos|Degraded|SlowReplica|RejoinDeadline|SyncWithin|PoolWaitTimeout|StalledBackend' \
		./internal/core ./internal/cluster ./internal/lb

# WAL torture: the durability battery. Crash points, torn tails, and
# subprocess kill -9 recovery in sqldb (including a short fuzz pass over
# the record decoder), the cluster's log-shipping rejoin, and the full-
# stack crash matrix in core — all under -race with hard timeouts.
wal-torture:
	$(GO) test -race -timeout 300s -run 'WAL|Recover|TornTail|Checkpoint' \
		./internal/sqldb ./internal/cluster ./internal/core
	$(GO) test -timeout 120s -run '^$$' -fuzz FuzzWALRecord -fuzztime 20s ./internal/sqldb

# Coverage run with per-package floors: every package reports, the
# packages named in COVER_FLOORS must clear their floor.
cover:
	@$(GO) test -cover ./... > coverage.txt; status=$$?; cat coverage.txt; \
		if [ $$status -ne 0 ]; then echo "cover: tests failed"; exit $$status; fi
	@fail=0; \
	for spec in $(COVER_FLOORS); do \
		pkg=$${spec%:*}; floor=$${spec#*:}; \
		pct=$$(awk -v p="$$pkg" '$$2 == p && /coverage:/ { for (i = 1; i <= NF; i++) if ($$i ~ /%/) { gsub(/%/, "", $$i); print $$i } }' coverage.txt); \
		if [ -z "$$pct" ]; then echo "cover: no coverage line for $$pkg"; fail=1; continue; fi; \
		ok=$$(awk -v a="$$pct" -v b="$$floor" 'BEGIN { print (a >= b) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "cover: FAIL $$pkg at $$pct% (floor $$floor%)"; fail=1; \
		else echo "cover: ok $$pkg $$pct% (floor $$floor%)"; fi; \
	done; exit $$fail

# Mirror of .github/workflows/ci.yml for local runs.
ci: lint build race chaos-smoke wal-torture cover bench-smoke bench-gate
