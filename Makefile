# Paper-reproduction build targets. `make bench-json` records the perf
# trajectory: it runs the paper-figure and wire-protocol benchmarks and
# writes BENCH_<n>.json (see cmd/benchjson). `make ci` mirrors the GitHub
# workflow locally: lint, build, race tests, bench smoke and the
# perf-regression gate against the committed baseline.

GO ?= go
BASELINE ?= BENCH_0.json
THRESHOLD ?= 10

.PHONY: build test race vet lint fmt bench bench-json bench-smoke bench-gate ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; any output fails the target.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: fmt vet

# Full benchmark run (paper figures + ablations), human-readable.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Machine-readable snapshot of the headline benchmarks -> BENCH_<n>.json.
bench-json:
	$(GO) run ./cmd/benchjson

# One-iteration smoke run: fails fast when a protocol change breaks a
# benchmark, without measuring anything (CI runs this).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Perf-regression gate: re-measure the headline benchmarks (best sample
# across 3 spread-out rounds of 2 runs each — noise-robust) and fail on a
# >$(THRESHOLD)% slowdown against $(BASELINE). Writes BENCH_ci.json.
bench-gate:
	$(GO) run ./cmd/benchjson -out BENCH_ci.json -count 2 -rounds 3 -benchtime 0.5s \
		-compare $(BASELINE) -threshold $(THRESHOLD)

# Mirror of .github/workflows/ci.yml for local runs.
ci: lint build race bench-smoke bench-gate
