# Paper-reproduction build targets. `make bench-json` records the perf
# trajectory: it runs the paper-figure and wire-protocol benchmarks and
# writes BENCH_<n>.json (see cmd/benchjson).

GO ?= go

.PHONY: build test race vet bench bench-json bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full benchmark run (paper figures + ablations), human-readable.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Machine-readable snapshot of the headline benchmarks -> BENCH_<n>.json.
bench-json:
	$(GO) run ./cmd/benchjson

# One-iteration smoke run: fails fast when a protocol change breaks a
# benchmark, without measuring anything (CI runs this).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
